"""Exact-exponential spectral propagator for the grid heat equation.

The 2D finite-difference operator of :mod:`repro.thermal.grid` is
linear, time-invariant, and *separable*: with adiabatic (insulated) die
edges, the lateral coupling along each axis is the 1D Neumann Laplacian

    (L u)_j = u_{j-1} - 2 u_j + u_{j+1}        (interior)
    (L u)_0 = u_1 - u_0,   (L u)_{N-1} = u_{N-2} - u_{N-1}

whose eigenvectors are the DCT-II cosine modes
``v_k[j] = cos(pi k (j + 1/2) / N)`` with eigenvalues
``-mu_k = -(2 - 2 cos(pi k / N))`` -- the mirror symmetry of the cosine
about the half-cell boundary reproduces the one-sided edge rows
exactly, so the diagonalization is *exact for the discrete operator*,
not an approximation of the continuum.

Writing the deviation field ``U = T - T_sink`` and projecting both it
and the power field into the (orthonormal) cosine eigenbasis,

    U_hat = V^T U V,    P_hat = V^T P V,

every mode ``(k, m)`` evolves independently by the scalar block ODE

    C dU_hat/dt = P_hat - lambda_{km} U_hat,
    lambda_{km} = G_ver + G_lat_y * mu_k + G_lat_x * mu_m,

which has the same closed-form constant-power solution the lumped
model's :meth:`~repro.thermal.lumped.LumpedThermalModel.advance` uses:

    U_hat(t + h) = U_ss + (U_hat(t) - U_ss) * exp(-lambda h / C),
    U_ss = P_hat / lambda.

Any interval ``h`` is therefore one projection, one elementwise decay,
and one back-projection -- unconditionally stable, *exact in time* for
the spatial discretization (the only error is float rounding), and
independent of the explicit-Euler stability bound that forces
``repro.thermal.grid`` to take thousands of sub-steps per sampling
interval.  ``lambda > 0`` everywhere (the vertical path ``G_ver``
grounds even the DC mode), so the steady state is a direct elementwise
divide instead of a settle iteration.

The per-``seconds`` decay cache mirrors
:data:`repro.thermal.lumped._SHARED_DECAY`: identical (operator,
timestep) keys share one read-only array process-wide, so a DTM loop
that advances by one fixed sampling interval pays ``np.exp`` once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ThermalModelError

#: Process-wide decay cache shared by every propagator instance, keyed
#: by (eigenvalue bytes, capacitance, seconds).  The eigenvalue bytes
#: capture the exact float bits the decay expression consumes, so
#: sharing cannot perturb bit-identity between instances.
_SHARED_DECAY: dict[tuple, np.ndarray] = {}

#: Safety bound on distinct (operator, interval) entries; sweeps over
#: many resolutions would otherwise grow the dict without limit.
#: Entries are pure recomputable values, so wholesale eviction is only
#: a cost, never a correctness concern.
_SHARED_DECAY_MAX = 256


def cosine_basis(resolution: int) -> np.ndarray:
    """The orthonormal DCT-II eigenbasis of the 1D Neumann Laplacian.

    Column ``k`` is ``sqrt((2 - (k == 0)) / N) * cos(pi k (j+1/2) / N)``
    over rows ``j``; the matrix is orthogonal (``V^T V = I``) so the
    inverse transform is the transpose.  Returned read-only: instances
    share it through module-level reuse and must not mutate it.
    """
    if resolution < 1:
        raise ThermalModelError("resolution must be at least 1")
    j = np.arange(resolution)[:, None] + 0.5
    k = np.arange(resolution)[None, :]
    basis = np.cos(np.pi * k * j / resolution)
    basis *= np.sqrt(2.0 / resolution)
    basis[:, 0] = np.sqrt(1.0 / resolution)
    basis.flags.writeable = False
    return basis


def neumann_eigenvalues(resolution: int) -> np.ndarray:
    """``mu_k = 2 - 2 cos(pi k / N)``: the 1D Neumann Laplacian spectrum.

    ``L v_k = -mu_k v_k`` for the cosine modes of :func:`cosine_basis`;
    ``mu_0 = 0`` is the conserved (adiabatic) DC mode.  Read-only.
    """
    if resolution < 1:
        raise ThermalModelError("resolution must be at least 1")
    mu = 2.0 - 2.0 * np.cos(np.pi * np.arange(resolution) / resolution)
    mu.flags.writeable = False
    return mu


class SpectralPropagator:
    """Closed-form constant-power propagator for one grid operator.

    Operates on *deviation* fields (temperature minus the heatsink
    reference) of shape ``(N, N)``; the caller owns the reference
    offset.  ``g_lat_x`` couples columns (axis 1), ``g_lat_y`` couples
    rows (axis 0), ``g_ver`` grounds every cell to the sink, and
    ``cell_c`` is the per-cell heat capacitance -- exactly the
    conductances :class:`repro.thermal.grid.GridThermalModel` derives
    from the die geometry.
    """

    def __init__(
        self,
        resolution: int,
        g_lat_x: float,
        g_lat_y: float,
        g_ver: float,
        cell_c: float,
    ) -> None:
        if resolution < 1:
            raise ThermalModelError("resolution must be at least 1")
        if g_ver <= 0:
            raise ThermalModelError(
                "g_ver must be positive: the vertical path to the sink "
                "is what grounds the DC mode and makes the steady state "
                "a direct solve"
            )
        if g_lat_x < 0 or g_lat_y < 0:
            raise ThermalModelError("lateral conductances must be >= 0")
        if cell_c <= 0:
            raise ThermalModelError("cell_c must be positive")
        self.resolution = int(resolution)
        self.cell_c = float(cell_c)
        self.basis = cosine_basis(resolution)
        #: Contiguous copy of ``basis.T``: BLAS takes the no-transpose
        #: fast path on both matmuls of each projection (measurably
        #: faster than multiplying through the transpose view).
        basis_t = np.ascontiguousarray(self.basis.T)
        basis_t.flags.writeable = False
        self._basis_t = basis_t
        mu = neumann_eigenvalues(resolution)
        #: ``lambda[k, m]`` for row (y) mode ``k`` and column (x) mode
        #: ``m``; strictly positive, so every mode decays and the
        #: steady-state divide is always well defined.
        eigenvalues = g_ver + g_lat_y * mu[:, None] + g_lat_x * mu[None, :]
        eigenvalues.flags.writeable = False
        self.eigenvalues = eigenvalues
        self._decay_cache: dict[float, np.ndarray] = {}
        self._decay_key = (eigenvalues.tobytes(), self.cell_c)

    # -- transforms --------------------------------------------------------
    def to_modes(self, field: np.ndarray) -> np.ndarray:
        """Project a physical ``(N, N)`` field into the cosine eigenbasis."""
        return np.dot(np.dot(self._basis_t, field), self.basis)

    def from_modes(self, modes: np.ndarray) -> np.ndarray:
        """Reconstruct the physical field from eigenbasis coefficients."""
        return np.dot(np.dot(self.basis, modes), self._basis_t)

    # -- closed-form evolution ---------------------------------------------
    def decay(self, seconds: float) -> np.ndarray:
        """``exp(-lambda * seconds / C)`` with the two-level cache.

        Mirrors :meth:`repro.thermal.lumped.LumpedThermalModel._decay`:
        the per-instance dict makes the per-sample lookup one dict hit,
        and the process-wide store shares the computed arrays across
        every propagator with the same operator.  Read-only, as
        required once shared.
        """
        decay = self._decay_cache.get(seconds)
        if decay is None:
            key = (*self._decay_key, seconds)
            decay = _SHARED_DECAY.get(key)
            if decay is None:
                if len(_SHARED_DECAY) >= _SHARED_DECAY_MAX:
                    _SHARED_DECAY.clear()
                decay = np.exp(-(seconds / self.cell_c) * self.eigenvalues)
                decay.flags.writeable = False
                _SHARED_DECAY[key] = decay
            self._decay_cache[seconds] = decay
        return decay

    def _validate(self, field: np.ndarray, name: str) -> np.ndarray:
        field = np.asarray(field, dtype=float)
        expected = (self.resolution, self.resolution)
        if field.shape != expected:
            raise ThermalModelError(
                f"{name} must have shape {expected}, got {field.shape}"
            )
        return field

    def advance(
        self, deviation: np.ndarray, power: np.ndarray, seconds: float
    ) -> np.ndarray:
        """Evolve a deviation field ``seconds`` under constant power.

        One projection pair, one elementwise decay, one back-projection
        -- exact for any ``seconds > 0``, no stability bound.
        """
        if seconds <= 0:
            raise ThermalModelError("seconds must be positive")
        deviation = self._validate(deviation, "deviation")
        power = self._validate(power, "power")
        u_hat = self.to_modes(deviation)
        steady_hat = self.to_modes(power) / self.eigenvalues
        u_hat = steady_hat + (u_hat - steady_hat) * self.decay(seconds)
        return self.from_modes(u_hat)

    def steady_state(self, power: np.ndarray) -> np.ndarray:
        """The equilibrium deviation field: ``V (P_hat / lambda) V^T``.

        A direct elementwise solve in the eigenbasis -- no settle
        iteration, no convergence question.
        """
        power = self._validate(power, "power")
        return self.from_modes(self.to_modes(power) / self.eigenvalues)
