"""Derivation of per-block thermal R and C from silicon properties.

Paper Section 4.3: for a functional block of area ``A`` on a die of
thickness ``t``,

* the block thermal capacitance is the heat capacity of its silicon
  volume, ``C = c_v * A * t``;
* the *normal* thermal resistance (block -> heat spreader through the
  die) is the conduction resistance of that column of silicon,
  ``R_normal = rho * t / A`` with ``rho`` the thermal resistivity;
* the *tangential* resistance (block -> neighboring blocks sideways
  through the die) follows from integrating thermal Ohm's law over
  annular shells of thickness ``t`` (the paper's Equation 4), which
  yields a logarithmic form ``R_tan = rho / (2*pi*t) * ln(r_outer /
  r_inner)``.

Because ``R_tan`` evaluates orders of magnitude above ``R_normal`` for
realistic block sizes, the paper drops the tangential paths in its
simplified model (Figure 3C); :func:`tangential_to_normal_ratio` makes
that argument quantitative and is exercised by the Figure 3 experiment.

Note that ``R_normal * C = c_v * rho * t**2`` is independent of block
area -- every block shares one vertical time constant (~175 us with the
calibrated constants), squarely inside the paper's "tens to hundreds of
microseconds".
"""

from __future__ import annotations

import math

from repro import units
from repro.errors import ThermalModelError


def _check_area(area_m2: float) -> None:
    if area_m2 <= 0:
        raise ThermalModelError(f"block area must be positive, got {area_m2}")


def block_capacitance(
    area_m2: float,
    thickness: float = units.DIE_THICKNESS,
    volumetric_heat_capacity: float = units.SILICON_VOLUMETRIC_HEAT_CAPACITY,
) -> float:
    """Thermal capacitance of a silicon block [J/K]: ``c_v * A * t``."""
    _check_area(area_m2)
    if thickness <= 0:
        raise ThermalModelError("die thickness must be positive")
    return volumetric_heat_capacity * area_m2 * thickness


def block_normal_resistance(
    area_m2: float,
    thickness: float = units.DIE_THICKNESS,
    resistivity: float = units.SILICON_THERMAL_RESISTIVITY,
) -> float:
    """Normal (vertical) thermal resistance of a block [K/W].

    Conduction through the die thickness: ``R = rho * t / A``.
    """
    _check_area(area_m2)
    if thickness <= 0:
        raise ThermalModelError("die thickness must be positive")
    return resistivity * thickness / area_m2


def block_tangential_resistance(
    area_m2: float,
    die_area_m2: float,
    thickness: float = units.DIE_THICKNESS,
    resistivity: float = units.SILICON_THERMAL_RESISTIVITY,
) -> float:
    """Tangential (lateral) thermal resistance of a block [K/W].

    Paper Equation 4: treating heat as flowing radially outward from the
    block (radius ``r_in``, the block's equivalent circular radius)
    through the surrounding die (out to radius ``r_out``) in a silicon
    sheet of the die thickness:

    ``R_tan = integral_{r_in}^{r_out} rho / (2*pi*r*t) dr
            = rho / (2*pi*t) * ln(r_out / r_in)``.

    The result is orders of magnitude larger than the normal resistance
    because the conduction cross-section (a thin cylindrical shell of
    height ``t``) is tiny compared with the block's full footprint.
    """
    _check_area(area_m2)
    if die_area_m2 <= area_m2:
        raise ThermalModelError("die area must exceed the block area")
    r_inner = math.sqrt(area_m2 / math.pi)
    r_outer = math.sqrt(die_area_m2 / math.pi)
    return resistivity / (2.0 * math.pi * thickness) * math.log(r_outer / r_inner)


def block_time_constant(
    area_m2: float,
    thickness: float = units.DIE_THICKNESS,
    resistivity: float = units.SILICON_THERMAL_RESISTIVITY,
    volumetric_heat_capacity: float = units.SILICON_VOLUMETRIC_HEAT_CAPACITY,
) -> float:
    """RC time constant of a block's vertical path [s].

    ``R * C = (rho * t / A) * (c_v * A * t) = rho * c_v * t**2`` -- the
    block area cancels, so all blocks on the same die share one vertical
    time constant.
    """
    _check_area(area_m2)
    return block_normal_resistance(
        area_m2, thickness, resistivity
    ) * block_capacitance(area_m2, thickness, volumetric_heat_capacity)


def tangential_to_normal_ratio(
    area_m2: float,
    die_area_m2: float,
    thickness: float = units.DIE_THICKNESS,
    resistivity: float = units.SILICON_THERMAL_RESISTIVITY,
) -> float:
    """How many times larger the tangential resistance is than the normal.

    The paper's justification for the Figure 3C simplification: when
    this ratio is large, lateral heat flow is negligible and each block
    couples to the heatsink independently.
    """
    r_tan = block_tangential_resistance(area_m2, die_area_m2, thickness, resistivity)
    r_nor = block_normal_resistance(area_m2, thickness, resistivity)
    return r_tan / r_nor
