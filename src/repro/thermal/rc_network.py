"""General lumped thermal-RC network solver (the detailed model, Fig. 3B).

A network is a set of capacitive nodes (functional blocks, heat
spreader, heatsink...) connected by thermal resistances to each other
and to fixed-temperature references (ambient, or the isothermal
heatsink of the simplified model).  The state evolves by

    C_i * dT_i/dt = P_i(t) + sum_j (T_j - T_i) / R_ij
                           + sum_ref (T_ref - T_i) / R_i,ref

which we integrate with forward Euler, automatically sub-stepping so the
explicit update stays well inside its stability bound
(dt < min_i C_i / G_i, with G_i the node's total conductance).

This class is used two ways:

* to build the *detailed* block network of Figure 3B, including
  tangential resistances between neighboring blocks, against which the
  paper's simplified model (Figure 3C, :mod:`repro.thermal.lumped`) is
  validated; and
* to build arbitrary package stacks for tests and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ThermalModelError


@dataclass(frozen=True)
class _Edge:
    """A thermal resistance between two capacitive nodes."""

    node_a: int
    node_b: int
    conductance: float


@dataclass(frozen=True)
class _ReferenceEdge:
    """A thermal resistance from a node to a fixed-temperature reference."""

    node: int
    reference_temperature: float
    conductance: float


class ThermalRCNetwork:
    """A mutable builder + integrator for lumped thermal RC networks."""

    def __init__(self) -> None:
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        self._capacitances: list[float] = []
        self._initial: list[float] = []
        self._edges: list[_Edge] = []
        self._reference_edges: list[_ReferenceEdge] = []
        self._temperatures: np.ndarray | None = None
        self._conductance_matrix: np.ndarray | None = None
        self._reference_injection: np.ndarray | None = None
        self._capacitance_vector: np.ndarray | None = None
        self._max_stable_dt: float = 0.0

    # -- construction ----------------------------------------------------
    def add_node(
        self, name: str, capacitance: float, initial_temperature: float
    ) -> None:
        """Add a capacitive node to the network."""
        if name in self._index:
            raise ThermalModelError(f"duplicate node {name!r}")
        if capacitance <= 0:
            raise ThermalModelError(f"{name}: capacitance must be positive")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._capacitances.append(capacitance)
        self._initial.append(initial_temperature)
        self._temperatures = None  # state vector must grow with the node set
        self._invalidate()

    def connect(self, name_a: str, name_b: str, resistance: float) -> None:
        """Connect two nodes with a thermal resistance [K/W]."""
        if resistance <= 0:
            raise ThermalModelError("resistance must be positive")
        index_a = self._lookup(name_a)
        index_b = self._lookup(name_b)
        if index_a == index_b:
            raise ThermalModelError(f"cannot connect {name_a!r} to itself")
        self._edges.append(_Edge(index_a, index_b, 1.0 / resistance))
        self._invalidate()

    def connect_reference(
        self, name: str, reference_temperature: float, resistance: float
    ) -> None:
        """Connect a node to a fixed-temperature reference (e.g. ambient)."""
        if resistance <= 0:
            raise ThermalModelError("resistance must be positive")
        index = self._lookup(name)
        self._reference_edges.append(
            _ReferenceEdge(index, reference_temperature, 1.0 / resistance)
        )
        self._invalidate()

    # -- inspection --------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        """Node names in insertion order."""
        return tuple(self._names)

    def temperature(self, name: str) -> float:
        """Current temperature of one node [degC]."""
        self._ensure_compiled()
        assert self._temperatures is not None
        return float(self._temperatures[self._lookup(name)])

    def temperatures(self) -> dict[str, float]:
        """Current temperatures of all nodes."""
        self._ensure_compiled()
        assert self._temperatures is not None
        return {
            name: float(self._temperatures[index])
            for name, index in self._index.items()
        }

    def reset(self) -> None:
        """Return every node to its initial temperature."""
        self._temperatures = np.array(self._initial, dtype=float)

    # -- integration -------------------------------------------------------
    def step(self, powers: dict[str, float], dt: float) -> dict[str, float]:
        """Advance the network ``dt`` seconds with the given node powers.

        ``powers`` maps node name -> dissipated power [W]; omitted nodes
        dissipate nothing.  Returns the new temperatures.  The explicit
        Euler update is sub-stepped automatically when ``dt`` exceeds
        half the stability bound.
        """
        if dt <= 0:
            raise ThermalModelError("dt must be positive")
        self._ensure_compiled()
        assert self._temperatures is not None
        assert self._conductance_matrix is not None
        assert self._reference_injection is not None
        assert self._capacitance_vector is not None

        injection = self._reference_injection.copy()
        for name, power in powers.items():
            injection[self._lookup(name)] += power

        substeps = max(1, int(np.ceil(dt / (0.5 * self._max_stable_dt))))
        sub_dt = dt / substeps
        temps = self._temperatures
        matrix = self._conductance_matrix
        capacitance = self._capacitance_vector
        for _ in range(substeps):
            flow = matrix @ temps + injection
            temps = temps + sub_dt * flow / capacitance
        self._temperatures = temps
        return self.temperatures()

    def run(
        self, powers: dict[str, float], duration: float, dt: float
    ) -> dict[str, float]:
        """Hold constant powers for ``duration`` seconds."""
        steps = max(1, int(round(duration / dt)))
        result = self.temperatures()
        for _ in range(steps):
            result = self.step(powers, dt)
        return result

    def steady_state(self, powers: dict[str, float]) -> dict[str, float]:
        """Exact steady-state temperatures under constant powers.

        Solves the linear system ``-G @ T = P + P_ref`` directly; used
        by tests to validate the integrator and by experiments that only
        need equilibria.
        """
        self._ensure_compiled()
        assert self._conductance_matrix is not None
        assert self._reference_injection is not None
        injection = self._reference_injection.copy()
        for name, power in powers.items():
            injection[self._lookup(name)] += power
        if not self._reference_edges:
            raise ThermalModelError(
                "steady state requires at least one reference connection"
            )
        solution = np.linalg.solve(-self._conductance_matrix, injection)
        return {
            name: float(solution[index]) for name, index in self._index.items()
        }

    # -- internals -----------------------------------------------------------
    def _lookup(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ThermalModelError(f"unknown node {name!r}") from None

    def _invalidate(self) -> None:
        self._conductance_matrix = None

    def _ensure_compiled(self) -> None:
        if self._conductance_matrix is not None:
            return
        count = len(self._names)
        if count == 0:
            raise ThermalModelError("network has no nodes")
        matrix = np.zeros((count, count), dtype=float)
        injection = np.zeros(count, dtype=float)
        for edge in self._edges:
            matrix[edge.node_a, edge.node_a] -= edge.conductance
            matrix[edge.node_b, edge.node_b] -= edge.conductance
            matrix[edge.node_a, edge.node_b] += edge.conductance
            matrix[edge.node_b, edge.node_a] += edge.conductance
        for ref in self._reference_edges:
            matrix[ref.node, ref.node] -= ref.conductance
            injection[ref.node] += ref.conductance * ref.reference_temperature
        self._conductance_matrix = matrix
        self._reference_injection = injection
        self._capacitance_vector = np.array(self._capacitances, dtype=float)
        total_conductance = -np.diag(matrix)
        with np.errstate(divide="ignore"):
            bounds = np.where(
                total_conductance > 0,
                self._capacitance_vector / np.maximum(total_conductance, 1e-300),
                np.inf,
            )
        self._max_stable_dt = float(np.min(bounds))
        if self._temperatures is None:
            self.reset()
