"""Temperature sensor models.

The paper assumes an idealized sensor per monitored block (gain 1, no
noise, no offset) and flags realistic sensor behaviour as future work.
We provide the ideal sensor plus two realistic variants -- additive
Gaussian noise and quantization -- so the controller experiments can
probe robustness (one of the paper's claims is that feedback control
remains effective when the plant or sensing is imperfectly modeled).

Every sensor implements the :class:`Sensor` protocol -- a single
``read(true_temperature) -> float`` method.  Wrappers compose: the
fault injector :class:`~repro.faults.sensor.FaultySensor` accepts any
of these models as its inner sensor, and the failsafe layer
(:mod:`repro.dtm.failsafe`) treats whatever comes out as untrusted.
Note that sensors may legitimately return ``NaN`` (a dropped reading);
*consumers*, not sensors, decide how to handle implausible values.
"""

from __future__ import annotations

import math
import random
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError


@runtime_checkable
class Sensor(Protocol):
    """Structural type of every temperature sensor model."""

    def read(self, true_temperature: float) -> float:
        """Return the measured temperature [degC] (may be ``NaN``)."""
        ...  # pragma: no cover - protocol stub


class IdealSensor:
    """Reports the true temperature (the paper's assumption, gain 1)."""

    def read(self, true_temperature: float) -> float:
        """Return the measured temperature [degC]."""
        return true_temperature


class NoisySensor:
    """Adds zero-mean Gaussian noise and a fixed offset to the reading."""

    def __init__(
        self, noise_sigma: float = 0.05, offset: float = 0.0, seed: int = 0
    ) -> None:
        if noise_sigma < 0:
            raise ConfigError("noise_sigma must be non-negative")
        self.noise_sigma = noise_sigma
        self.offset = offset
        self._rng = random.Random(seed)

    def read(self, true_temperature: float) -> float:
        """Return a noisy measurement of the true temperature."""
        noise = self._rng.gauss(0.0, self.noise_sigma) if self.noise_sigma else 0.0
        return true_temperature + self.offset + noise


class QuantizedSensor:
    """Quantizes readings to a fixed step (e.g. a 0.25 K on-chip ADC)."""

    def __init__(self, step: float = 0.25) -> None:
        if step <= 0:
            raise ConfigError("quantization step must be positive")
        self.step = step

    def read(self, true_temperature: float) -> float:
        """Return the reading rounded to the nearest quantization step."""
        return self.step * math.floor(true_temperature / self.step + 0.5)
