"""The thermal/electrical duality of paper Table 1.

Heat conduction in a solid obeys the same equations as current flow in
an RC circuit: heat flow plays the role of current, temperature
difference the role of voltage, thermal resistance the role of
electrical resistance, and thermal mass the role of capacitance.  This
module records that equivalence as data (for documentation and the
Table 1 experiment) and provides the two "Ohm's law" helpers the rest of
the thermal package is built on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DualityRow:
    """One row of Table 1: a thermal quantity and its electrical dual."""

    thermal_quantity: str
    thermal_unit: str
    electrical_quantity: str
    electrical_unit: str


#: Table 1 of the paper, verbatim.
EQUIVALENCE_TABLE: tuple[DualityRow, ...] = (
    DualityRow("Heat flow, power", "W", "Current flow", "A"),
    DualityRow("Temperature difference", "K", "Voltage", "V"),
    DualityRow("Thermal resistance", "K/W", "Electrical resistance", "Ohm"),
    DualityRow("Thermal mass, capacitance", "J/K", "Electrical capacitance", "F"),
    DualityRow("Thermal RC constant", "s", "Electrical RC constant", "s"),
)


def temperature_drop(power: float, resistance: float) -> float:
    """Thermal Ohm's law: the temperature rise across a resistance.

    ``delta_T = P * R`` -- the dual of ``V = I * R``.
    """
    return power * resistance


def heat_flow(delta_t: float, resistance: float) -> float:
    """Heat flow through a thermal resistance given a temperature drop."""
    if resistance <= 0:
        raise ValueError("thermal resistance must be positive")
    return delta_t / resistance


def steady_state_temperature(
    power: float, resistance: float, reference: float
) -> float:
    """Steady-state temperature of a node dissipating ``power``.

    This is the Section 4.1 worked example: a die dissipating 25 W
    through 2 K/W total resistance above a 27 degC ambient settles at
    27 + 25 * 2 = 77 degC.
    """
    return reference + temperature_drop(power, resistance)


def rc_time_constant(resistance: float, capacitance: float) -> float:
    """Exponential time constant of an RC pair, in seconds."""
    return resistance * capacitance
