"""The simplified per-block thermal model of Figure 3C (paper Eq. 5).

Each monitored block couples to an isothermal heatsink through its
normal resistance ``R_i`` and stores heat in its capacitance ``C_i``:

    T_i[n+1] = T_i[n] + dt/C_i * ( P_i[n] - (T_i[n] - T_sink) / R_i )

This is exactly the difference equation the paper evaluates every clock
cycle (Equation 5, dt = 0.667 ns).  Two update paths are provided:

* :meth:`LumpedThermalModel.step_cycle` -- the paper's forward-Euler
  per-cycle update, vectorized over blocks;
* :meth:`LumpedThermalModel.advance` -- the exact exponential solution
  for a constant-power interval,
  ``T(t+h) = T_ss + (T(t) - T_ss) * exp(-h / RC)`` with
  ``T_ss = T_sink + P * R``, used by the fast engine to jump a whole
  controller sampling interval at once with no integration error.

Both paths agree to within Euler truncation error; a test asserts this.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ThermalModelError
from repro.thermal.floorplan import Floorplan


class LumpedThermalModel:
    """Per-block temperatures over an isothermal heatsink."""

    def __init__(
        self,
        floorplan: Floorplan,
        heatsink_temperature: float = 100.0,
        initial_temperature: float | None = None,
        cycle_time: float = units.CYCLE_TIME,
    ) -> None:
        if cycle_time <= 0:
            raise ThermalModelError("cycle_time must be positive")
        self.floorplan = floorplan
        self.heatsink_temperature = float(heatsink_temperature)
        self.cycle_time = float(cycle_time)
        self._resistance = np.array(
            [block.resistance for block in floorplan.blocks], dtype=float
        )
        self._capacitance = np.array(
            [block.capacitance for block in floorplan.blocks], dtype=float
        )
        self._tau = self._resistance * self._capacitance
        #: Forward Euler diverges at dt >= 2*min(tau); precomputed for
        #: the per-cycle hot path.
        self._euler_limit = 2.0 * float(self._tau.min())
        start = (
            self.heatsink_temperature
            if initial_temperature is None
            else float(initial_temperature)
        )
        self._initial = start
        self._temps = np.full(len(floorplan.blocks), start, dtype=float)
        #: Optional span profiler (:mod:`repro.telemetry`); ``None``
        #: keeps the update paths free of instrumentation overhead.
        self._profiler = None

    def attach_profiler(self, profiler) -> None:
        """Time future :meth:`step_cycle` / :meth:`advance` calls.

        ``profiler`` is a :class:`~repro.telemetry.profiler.Profiler`
        (or anything with its ``span(name)`` surface); pass ``None`` to
        detach and restore the uninstrumented fast path.
        """
        self._profiler = profiler

    # -- state ---------------------------------------------------------------
    @property
    def time_constants(self) -> np.ndarray:
        """Per-block RC time constants [s] (read-only copy)."""
        return self._tau.copy()

    @property
    def names(self) -> tuple[str, ...]:
        """Block names, in floorplan order."""
        return self.floorplan.names

    @property
    def temperatures(self) -> np.ndarray:
        """Current block temperatures [degC] (read-only copy)."""
        return self._temps.copy()

    def temperature(self, name: str) -> float:
        """Current temperature of one named block [degC]."""
        return float(self._temps[self.floorplan.index(name)])

    @property
    def max_temperature(self) -> float:
        """Temperature of the hottest monitored block [degC]."""
        return float(self._temps.max())

    @property
    def hottest_block(self) -> str:
        """Name of the hottest monitored block."""
        return self.names[int(self._temps.argmax())]

    def reset(self) -> None:
        """Return every block to the initial temperature."""
        self._temps.fill(self._initial)

    # -- updates -------------------------------------------------------------
    def step_cycle(self, powers: np.ndarray) -> np.ndarray:
        """One clock cycle of forward Euler (the paper's Equation 5).

        ``powers`` is an array of per-block power [W] in floorplan
        order.  Returns the new temperatures (a view copy).

        Forward Euler on ``dT/dt = (P - (T - T_sink)/R) / C`` is only
        stable for ``dt < 2 * tau``; at or beyond that the update
        oscillates with growing amplitude and silently produces garbage
        temperatures.  A timestep that large is rejected outright --
        use :meth:`advance` (exact for constant power) instead.
        """
        if self._profiler is not None:
            with self._profiler.span("thermal.step_cycle"):
                return self._step_cycle(powers)
        return self._step_cycle(powers)

    def _step_cycle(self, powers: np.ndarray) -> np.ndarray:
        if self.cycle_time >= self._euler_limit:
            raise ThermalModelError(
                f"cycle_time {self.cycle_time:g} s is forward-Euler "
                f"unstable: it must stay below 2*min(tau) = "
                f"{self._euler_limit:g} s; use advance() for long "
                f"constant-power intervals"
            )
        powers = np.asarray(powers, dtype=float)
        if powers.shape != self._temps.shape:
            raise ThermalModelError(
                f"expected {self._temps.shape[0]} block powers, got {powers.shape}"
            )
        leak = (self._temps - self.heatsink_temperature) / self._resistance
        self._temps += (self.cycle_time / self._capacitance) * (powers - leak)
        return self._temps.copy()

    def advance(self, powers: np.ndarray, cycles: int) -> np.ndarray:
        """Exact update for ``cycles`` cycles of constant per-block power.

        For constant power the block ODE has the closed-form solution
        toward the steady state ``T_sink + P * R``; using it makes the
        fast engine's thermal state independent of the sampling interval.
        """
        if self._profiler is not None:
            with self._profiler.span("thermal.advance"):
                return self._advance(powers, cycles)
        return self._advance(powers, cycles)

    def _advance(self, powers: np.ndarray, cycles: int) -> np.ndarray:
        if cycles <= 0:
            raise ThermalModelError("cycles must be positive")
        powers = np.asarray(powers, dtype=float)
        if powers.shape != self._temps.shape:
            raise ThermalModelError(
                f"expected {self._temps.shape[0]} block powers, got {powers.shape}"
            )
        steady = self.heatsink_temperature + powers * self._resistance
        decay = np.exp(-(cycles * self.cycle_time) / self._tau)
        self._temps = steady + (self._temps - steady) * decay
        return self._temps.copy()

    # -- analysis helpers ------------------------------------------------------
    def steady_state(self, powers: np.ndarray) -> np.ndarray:
        """Steady-state block temperatures under constant power [degC]."""
        powers = np.asarray(powers, dtype=float)
        return self.heatsink_temperature + powers * self._resistance

    def power_for_temperature(self, name: str, temperature: float) -> float:
        """Constant power that holds a block at ``temperature`` [W].

        Used by the boxcar power proxy of Section 6 to convert a
        temperature trigger into an equivalent average-power trigger:
        ``P_trig = (T_trig - T_sink) / R``.
        """
        block = self.floorplan.block(name)
        return (temperature - self.heatsink_temperature) / block.resistance

    def fraction_above(
        self,
        start: np.ndarray,
        steady: np.ndarray,
        duration_seconds: float,
        threshold: float,
    ) -> np.ndarray:
        """Per-block fraction of an interval spent above ``threshold``.

        For a constant-power interval each block moves exponentially
        from ``start`` toward ``steady``; the trajectory is monotonic,
        so the crossing time (if any) is
        ``t* = tau * ln((steady - start) / (steady - threshold))``.
        Used to count emergency/stress cycles with sub-sample accuracy.
        """
        start = np.asarray(start, dtype=float)
        steady = np.asarray(steady, dtype=float)
        if duration_seconds <= 0:
            # Zero-duration limit: the fraction degenerates to the
            # instantaneous indicator "strictly above threshold now".
            return (start > threshold).astype(float)
        tau = self._tau
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = (steady - start) / (steady - threshold)
            cross = tau * np.log(np.where(ratio > 0, ratio, 1.0))
        cross = np.clip(np.nan_to_num(cross, nan=0.0), 0.0, duration_seconds)
        rising = steady > start
        start_above = start > threshold
        steady_above = steady > threshold
        steady_below = steady < threshold
        fraction = np.zeros_like(start)
        # Rising toward a steady state strictly above threshold,
        # starting below: crosses upward at t*.
        crosses_up = rising & ~start_above & steady_above
        fraction[crosses_up] = 1.0 - cross[crosses_up] / duration_seconds
        # Falling from above threshold toward a steady state strictly
        # below it: crosses downward at t*.
        crosses_down = ~rising & start_above & steady_below
        fraction[crosses_down] = cross[crosses_down] / duration_seconds
        # Started above and heading to (or asymptotically toward) a
        # steady state at or above the threshold: never drops below.
        fraction[start_above & ~steady_below] = 1.0
        # Remaining cases start at/below threshold with a steady state
        # at or below it: the trajectory never exceeds the threshold.
        return fraction

    def time_to_temperature(
        self, name: str, power: float, target: float
    ) -> float:
        """Seconds for one block to heat from its current temperature to
        ``target`` under constant ``power``, or ``inf`` if unreachable.
        """
        index = self.floorplan.index(name)
        steady = self.heatsink_temperature + power * self._resistance[index]
        current = float(self._temps[index])
        if (target - current) * (steady - current) <= 0:
            return 0.0 if current == target else float("inf")
        if abs(steady - target) < 1e-12 or abs(steady - current) < 1e-12:
            return float("inf")
        ratio = (steady - target) / (steady - current)
        if ratio <= 0:
            return float("inf")
        return float(-self._tau[index] * np.log(ratio))
