"""The simplified per-block thermal model of Figure 3C (paper Eq. 5).

Each monitored block couples to an isothermal heatsink through its
normal resistance ``R_i`` and stores heat in its capacitance ``C_i``:

    T_i[n+1] = T_i[n] + dt/C_i * ( P_i[n] - (T_i[n] - T_sink) / R_i )

This is exactly the difference equation the paper evaluates every clock
cycle (Equation 5, dt = 0.667 ns).  Two update paths are provided:

* :meth:`LumpedThermalModel.step_cycle` -- the paper's forward-Euler
  per-cycle update, vectorized over blocks;
* :meth:`LumpedThermalModel.advance` -- the exact exponential solution
  for a constant-power interval,
  ``T(t+h) = T_ss + (T(t) - T_ss) * exp(-h / RC)`` with
  ``T_ss = T_sink + P * R``, used by the fast engine to jump a whole
  controller sampling interval at once with no integration error.

Both paths agree to within Euler truncation error; a test asserts this.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ThermalModelError
from repro.thermal.floorplan import Floorplan


#: Process-wide exponential-decay cache shared by every model instance,
#: keyed by (tau bytes, cycle_time, cycles).  A sweep builds one model
#: per run but every run over the same floorplan/timestep needs the
#: exact same ``exp(-h / tau)`` arrays; sharing them across instances
#: saves the per-run ``np.exp`` warm-up entirely.  Values are identical
#: for identical keys (``tau.tobytes()`` captures the exact float bits
#: the expression consumes), so sharing cannot perturb bit-identity.
_SHARED_DECAY: dict[tuple, np.ndarray] = {}

#: Safety bound on distinct (model, interval) decay entries; property
#: sweeps over random floorplans would otherwise grow the shared dict
#: without limit.  Cleared wholesale when full -- entries are pure
#: recomputable values, so eviction is only a cost, never a correctness
#: concern.
_SHARED_DECAY_MAX = 1024


class LumpedThermalModel:
    """Per-block temperatures over an isothermal heatsink."""

    def __init__(
        self,
        floorplan: Floorplan,
        heatsink_temperature: float = 100.0,
        initial_temperature: float | None = None,
        cycle_time: float = units.CYCLE_TIME,
    ) -> None:
        if cycle_time <= 0:
            raise ThermalModelError("cycle_time must be positive")
        self.floorplan = floorplan
        self.heatsink_temperature = float(heatsink_temperature)
        self.cycle_time = float(cycle_time)
        self._resistance = np.array(
            [block.resistance for block in floorplan.blocks], dtype=float
        )
        self._capacitance = np.array(
            [block.capacitance for block in floorplan.blocks], dtype=float
        )
        self._tau = self._resistance * self._capacitance
        #: Forward Euler diverges at dt >= 2*min(tau); precomputed for
        #: the per-cycle hot path.
        self._euler_limit = 2.0 * float(self._tau.min())
        start = (
            self.heatsink_temperature
            if initial_temperature is None
            else float(initial_temperature)
        )
        self._initial = start
        self._temps = np.full(len(floorplan.blocks), start, dtype=float)
        #: Cached read-only view of ``_temps`` (see ``temperatures_view``).
        self._temps_view: np.ndarray | None = None
        #: Exponential decay factors keyed by interval length in cycles
        #: (the fast engine advances by one fixed sampling interval, so
        #: this cache turns a per-sample ``np.exp`` into a dict hit).
        #: First level over the process-wide ``_SHARED_DECAY`` store,
        #: which additionally shares the arrays *across* model
        #: instances of the same (tau, cycle_time) parameters.
        self._decay_cache: dict[int, np.ndarray] = {}
        self._decay_key = (self._tau.tobytes(), self.cycle_time)
        #: Optional span profiler (:mod:`repro.telemetry`); ``None``
        #: keeps the update paths free of instrumentation overhead.
        self._profiler = None

    def attach_profiler(self, profiler) -> None:
        """Time future :meth:`step_cycle` / :meth:`advance` calls.

        ``profiler`` is a :class:`~repro.telemetry.profiler.Profiler`
        (or anything with its ``span(name)`` surface); pass ``None`` to
        detach and restore the uninstrumented fast path.
        """
        self._profiler = profiler

    # -- state ---------------------------------------------------------------
    @property
    def time_constants(self) -> np.ndarray:
        """Per-block RC time constants [s] (read-only copy)."""
        return self._tau.copy()

    @property
    def names(self) -> tuple[str, ...]:
        """Block names, in floorplan order."""
        return self.floorplan.names

    @property
    def temperatures(self) -> np.ndarray:
        """Current block temperatures [degC] (read-only copy)."""
        return self._temps.copy()

    @property
    def temperatures_view(self) -> np.ndarray:
        """Current block temperatures as a cached **read-only view**.

        Hot paths (the fast engine reads the state every sample) use
        this instead of :attr:`temperatures` to skip the per-read
        allocation; external mutation is still impossible because the
        view's ``writeable`` flag is cleared.  The view tracks state
        updates: :meth:`advance` rebinds the underlying array (so
        callers holding the *previous* view keep a stable snapshot of
        the pre-advance temperatures), and this property re-wraps the
        current array on demand.
        """
        view = self._temps_view
        if view is None or view.base is not self._temps:
            view = self._temps.view()
            view.flags.writeable = False
            self._temps_view = view
        return view

    def temperature(self, name: str) -> float:
        """Current temperature of one named block [degC]."""
        return float(self._temps[self.floorplan.index(name)])

    @property
    def max_temperature(self) -> float:
        """Temperature of the hottest monitored block [degC]."""
        return float(self._temps.max())

    @property
    def hottest_block(self) -> str:
        """Name of the hottest monitored block."""
        return self.names[int(self._temps.argmax())]

    def reset(self) -> None:
        """Return every block to the initial temperature."""
        self._temps.fill(self._initial)

    # -- updates -------------------------------------------------------------
    def step_cycle(self, powers: np.ndarray) -> np.ndarray:
        """One clock cycle of forward Euler (the paper's Equation 5).

        ``powers`` is an array of per-block power [W] in floorplan
        order.  Returns the new temperatures (a view copy).

        Forward Euler on ``dT/dt = (P - (T - T_sink)/R) / C`` is only
        stable for ``dt < 2 * tau``; at or beyond that the update
        oscillates with growing amplitude and silently produces garbage
        temperatures.  A timestep that large is rejected outright --
        use :meth:`advance` (exact for constant power) instead.
        """
        if self._profiler is not None:
            with self._profiler.span("thermal.step_cycle"):
                return self._step_cycle(powers)
        return self._step_cycle(powers)

    def _step_cycle(self, powers: np.ndarray) -> np.ndarray:
        if self.cycle_time >= self._euler_limit:
            raise ThermalModelError(
                f"cycle_time {self.cycle_time:g} s is forward-Euler "
                f"unstable: it must stay below 2*min(tau) = "
                f"{self._euler_limit:g} s; use advance() for long "
                f"constant-power intervals"
            )
        powers = np.asarray(powers, dtype=float)
        if powers.shape != self._temps.shape:
            raise ThermalModelError(
                f"expected {self._temps.shape[0]} block powers, got {powers.shape}"
            )
        leak = (self._temps - self.heatsink_temperature) / self._resistance
        self._temps += (self.cycle_time / self._capacitance) * (powers - leak)
        return self._temps.copy()

    def advance(self, powers: np.ndarray, cycles: int) -> np.ndarray:
        """Exact update for ``cycles`` cycles of constant per-block power.

        For constant power the block ODE has the closed-form solution
        toward the steady state ``T_sink + P * R``; using it makes the
        fast engine's thermal state independent of the sampling interval.
        """
        if self._profiler is not None:
            with self._profiler.span("thermal.advance"):
                return self._advance(powers, cycles)
        return self._advance(powers, cycles)

    def _decay(self, cycles: int) -> np.ndarray:
        """Per-block ``exp(-h / tau)`` for an ``h = cycles`` interval.

        Two-level cache: the per-instance dict (keyed by ``cycles``
        alone) makes the per-sample lookup a single dict hit, and the
        process-wide ``_SHARED_DECAY`` store (keyed by the model's
        exact tau bits and timestep as well) shares the computed arrays
        across every model instance a sweep constructs, so only the
        first run over a given floorplan/timestep pays the ``np.exp``.
        The cached array is marked read-only so no caller can corrupt
        it -- a hard requirement once it is shared between instances.
        """
        decay = self._decay_cache.get(cycles)
        if decay is None:
            key = (*self._decay_key, cycles)
            decay = _SHARED_DECAY.get(key)
            if decay is None:
                if len(_SHARED_DECAY) >= _SHARED_DECAY_MAX:
                    _SHARED_DECAY.clear()
                decay = np.exp(-(cycles * self.cycle_time) / self._tau)
                decay.flags.writeable = False
                _SHARED_DECAY[key] = decay
            self._decay_cache[cycles] = decay
        return decay

    def _advance(self, powers: np.ndarray, cycles: int) -> np.ndarray:
        if cycles <= 0:
            raise ThermalModelError("cycles must be positive")
        powers = np.asarray(powers, dtype=float)
        if powers.shape != self._temps.shape:
            raise ThermalModelError(
                f"expected {self._temps.shape[0]} block powers, got {powers.shape}"
            )
        steady = self.heatsink_temperature + powers * self._resistance
        self._temps = steady + (self._temps - steady) * self._decay(cycles)
        return self._temps.copy()

    def advance_from(
        self, start: np.ndarray, powers: np.ndarray, cycles: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused exact update: one call returns ``(end, steady)``.

        The fast engine's original per-sample body paid for the
        steady-state solve twice -- once via :meth:`steady_state` (to
        feed :meth:`fraction_above`) and once more inside
        :meth:`advance`.  This fused entry point computes ``steady``
        once and reuses it for the exponential update, which is
        bit-identical because both paths evaluate the exact same
        expression (``T_sink + P * R``).

        ``start`` is the caller's snapshot of the pre-advance state
        (normally :attr:`temperatures_view`); the model's state is
        *rebound* to a freshly computed ``end`` array, so ``start``
        remains a valid, untouched snapshot after the call.  Both
        returned arrays are internal (no defensive copies): ``end`` is
        the model's new state and must not be mutated by the caller;
        ``steady`` is freshly allocated and owned by the caller.
        """
        if self._profiler is not None:
            with self._profiler.span("thermal.advance"):
                return self._advance_from(start, powers, cycles)
        return self._advance_from(start, powers, cycles)

    def _advance_from(
        self, start: np.ndarray, powers: np.ndarray, cycles: int
    ) -> tuple[np.ndarray, np.ndarray]:
        if cycles <= 0:
            raise ThermalModelError("cycles must be positive")
        if powers.shape != self._temps.shape:
            raise ThermalModelError(
                f"expected {self._temps.shape[0]} block powers, got {powers.shape}"
            )
        steady = self.heatsink_temperature + powers * self._resistance
        self._temps = steady + (start - steady) * self._decay(cycles)
        return self._temps, steady

    def advance_batch(
        self, start: np.ndarray, powers: np.ndarray, cycles: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked exact update for B independent lanes: ``(end, steady)``.

        ``start`` and ``powers`` have shape ``(B, n_blocks)``; each row
        is one independent simulation lane over this model's R/C
        parameters.  Every operation is the same elementwise expression
        :meth:`advance_from` evaluates (``T_sink + P * R`` and the
        cached exponential decay), merely broadcast over the leading
        lane axis, so row ``b`` of the result is bit-identical to a
        single-lane ``advance_from(start[b], powers[b], cycles)``.

        Pure: unlike :meth:`advance_from`, the model's own temperature
        state is **not** touched -- the caller (the lane-batched engine
        of :mod:`repro.sim.batch`) owns the stacked state.
        """
        if cycles <= 0:
            raise ThermalModelError("cycles must be positive")
        start = np.asarray(start, dtype=float)
        powers = np.asarray(powers, dtype=float)
        if powers.shape[-1] != self._temps.shape[0]:
            raise ThermalModelError(
                f"expected {self._temps.shape[0]} block powers per lane, "
                f"got {powers.shape}"
            )
        steady = self.heatsink_temperature + powers * self._resistance
        end = steady + (start - steady) * self._decay(cycles)
        return end, steady

    # -- analysis helpers ------------------------------------------------------
    def steady_state(self, powers: np.ndarray) -> np.ndarray:
        """Steady-state block temperatures under constant power [degC]."""
        powers = np.asarray(powers, dtype=float)
        return self.heatsink_temperature + powers * self._resistance

    def power_for_temperature(self, name: str, temperature: float) -> float:
        """Constant power that holds a block at ``temperature`` [W].

        Used by the boxcar power proxy of Section 6 to convert a
        temperature trigger into an equivalent average-power trigger:
        ``P_trig = (T_trig - T_sink) / R``.
        """
        block = self.floorplan.block(name)
        return (temperature - self.heatsink_temperature) / block.resistance

    def fraction_above(
        self,
        start: np.ndarray,
        steady: np.ndarray,
        duration_seconds: float,
        threshold: float,
    ) -> np.ndarray:
        """Per-block fraction of an interval spent above ``threshold``.

        For a constant-power interval each block moves exponentially
        from ``start`` toward ``steady``; the trajectory is monotonic,
        so the crossing time (if any) is
        ``t* = tau * ln((steady - start) / (steady - threshold))``.
        Used to count emergency/stress cycles with sub-sample accuracy.

        Implemented on top of :meth:`fractions_above` (the fused
        multi-threshold kernel); a property test asserts the two stay
        bit-identical.
        """
        return self.fractions_above(
            start, steady, duration_seconds, (threshold,)
        )[0]

    def fractions_above(
        self,
        start: np.ndarray,
        steady: np.ndarray,
        duration_seconds: float,
        thresholds,
    ) -> np.ndarray:
        """Per-block above-threshold fractions for several thresholds.

        The fast engine needs the emergency *and* the stress fraction
        of every sample; evaluating both in one broadcast pass shares
        the trajectory analysis (rising mask, crossing-time ``log``)
        instead of running the whole kernel twice.  Returns an array of
        shape ``(len(thresholds), n_blocks)`` whose row ``k`` is
        bit-identical to ``fraction_above(..., thresholds[k])`` --
        every operation is the same elementwise expression, merely
        broadcast over the threshold axis.

        ``start``/``steady`` may also carry leading *lane* axes (e.g.
        the ``(B, n_blocks)`` stacked state of
        :class:`repro.sim.batch.BatchEngine`); the thresholds then
        broadcast to shape ``(len(thresholds), B, n_blocks)`` and each
        lane's slice is bit-identical to its own single-lane pass, for
        the same reason as the threshold axis: pure elementwise
        broadcasting.
        """
        start = np.asarray(start, dtype=float)
        steady = np.asarray(steady, dtype=float)
        thr = np.asarray(thresholds, dtype=float).reshape(
            (-1,) + (1,) * start.ndim
        )
        if duration_seconds <= 0:
            # Zero-duration limit: the fraction degenerates to the
            # instantaneous indicator "strictly above threshold now".
            return (start > thr).astype(float)
        tau = self._tau
        # Crossing time t* = tau * ln((steady - start) / (steady - thr)).
        # The denominator is zero only where ``steady == thr`` exactly;
        # those lanes are provably excluded from both crossing masks
        # below (they are neither strictly above nor strictly below the
        # threshold), so the division is made warning-free by
        # substituting a harmless denominator instead of wrapping the
        # whole pass in an ``np.errstate`` context (measurably costly
        # per sample).  Every lane that *is* consumed evaluates the
        # exact same expression as before -- bit-identity is asserted
        # by a property test against the scalar kernel's history.
        denominator = steady - thr
        ratio = (steady - start) / np.where(
            denominator != 0.0, denominator, 1.0
        )
        cross = tau * np.log(np.where(ratio > 0, ratio, 1.0))
        cross.clip(0.0, duration_seconds, out=cross)
        scaled = cross / duration_seconds
        rising = steady > start
        start_above = start > thr
        steady_above = steady > thr
        steady_below = steady < thr
        # Rising toward a steady state strictly above threshold,
        # starting below: crosses upward at t*.  Falling from above
        # threshold toward a steady state strictly below it: crosses
        # downward at t*.  Started above and heading to (or
        # asymptotically toward) a steady state at or above the
        # threshold: never drops below.  The three masks are pairwise
        # disjoint, so ``where`` composition order is irrelevant;
        # remaining lanes never exceed the threshold and stay zero.
        fraction = np.where(rising & ~start_above & steady_above,
                            1.0 - scaled, 0.0)
        fraction = np.where(~rising & start_above & steady_below,
                            scaled, fraction)
        fraction = np.where(start_above & ~steady_below, 1.0, fraction)
        return fraction

    def time_to_temperature(
        self, name: str, power: float, target: float
    ) -> float:
        """Seconds for one block to heat from its current temperature to
        ``target`` under constant ``power``, or ``inf`` if unreachable.
        """
        index = self.floorplan.index(name)
        steady = self.heatsink_temperature + power * self._resistance[index]
        current = float(self._temps[index])
        if (target - current) * (steady - current) <= 0:
            return 0.0 if current == target else float("inf")
        if abs(steady - target) < 1e-12 or abs(steady - current) < 1e-12:
            return float("inf")
        ratio = (steady - target) / (steady - current)
        if ratio <= 0:
            return float("inf")
        return float(-self._tau[index] * np.log(ratio))
