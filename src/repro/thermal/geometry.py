"""Physical floorplan geometry: placing blocks as rectangles on the die.

The lumped models only need block *areas*; the 2D grid model
(:mod:`repro.thermal.grid`) needs actual rectangles.  This module
derives a legal placement from a :class:`~repro.thermal.floorplan.Floorplan`
with a simple slicing layout: blocks are packed into die-width rows in
floorplan order, each row as tall as needed for its blocks' areas.
Unoccupied die area is background silicon (the "unmonitored" logic).

The exact placement does not matter much — the paper drops lateral
coupling precisely because it is weak — but a legal, non-overlapping
geometry lets the grid model measure that weakness rather than assume
it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ThermalModelError
from repro.thermal.floorplan import Floorplan


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned block placement [meters]."""

    name: str
    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ThermalModelError(f"{self.name}: degenerate rectangle")
        if self.x < 0 or self.y < 0:
            raise ThermalModelError(f"{self.name}: negative placement")

    @property
    def area(self) -> float:
        """Rectangle area [m^2]."""
        return self.width * self.height

    def contains(self, x: float, y: float) -> bool:
        """True if the point lies inside (half-open on the far edges)."""
        return self.x <= x < self.x + self.width and self.y <= y < self.y + self.height

    def overlaps(self, other: "Rectangle") -> bool:
        """True if the two rectangles share interior area."""
        return not (
            self.x + self.width <= other.x
            or other.x + other.width <= self.x
            or self.y + self.height <= other.y
            or other.y + other.height <= self.y
        )


@dataclass(frozen=True)
class DieLayout:
    """A complete placement: die dimensions plus block rectangles."""

    die_width: float
    die_height: float
    rectangles: tuple[Rectangle, ...]

    def rectangle(self, name: str) -> Rectangle:
        """Look up a placed block by name."""
        for rect in self.rectangles:
            if rect.name == name:
                return rect
        raise ThermalModelError(f"unknown block {name!r}")

    def block_at(self, x: float, y: float) -> str | None:
        """Name of the block covering a die point, or None (background)."""
        for rect in self.rectangles:
            if rect.contains(x, y):
                return rect.name
        return None

    @property
    def occupied_fraction(self) -> float:
        """Fraction of the die covered by placed blocks."""
        placed = sum(rect.area for rect in self.rectangles)
        return placed / (self.die_width * self.die_height)


def slicing_layout(floorplan: Floorplan, blocks_per_row: int = 4) -> DieLayout:
    """Pack the floorplan's blocks into rows on a square die.

    Each row holds up to ``blocks_per_row`` blocks; block widths within
    a row are proportional to their areas, and the row height makes the
    areas exact.  Rows are stacked from the bottom; the leftover strip
    at the top is background silicon.
    """
    if blocks_per_row <= 0:
        raise ThermalModelError("blocks_per_row must be positive")
    die_side = math.sqrt(floorplan.die_area_m2)
    rectangles: list[Rectangle] = []
    y = 0.0
    blocks = list(floorplan.blocks)
    for start in range(0, len(blocks), blocks_per_row):
        row = blocks[start : start + blocks_per_row]
        row_area = sum(block.area_m2 for block in row)
        row_height = row_area / die_side
        x = 0.0
        for block in row:
            width = block.area_m2 / row_area * die_side
            rectangles.append(
                Rectangle(block.name, x, y, width, row_height)
            )
            x += width
        y += row_height
    if y > die_side + 1e-12:
        raise ThermalModelError("blocks do not fit on the die")
    return DieLayout(
        die_width=die_side, die_height=die_side, rectangles=tuple(rectangles)
    )
