"""Chip-level package model of Figure 2 (die -> case -> heatsink -> ambient).

The paper's Section 4.1 worked example: a die dissipating 25 W through
1 K/W die-to-case plus 1 K/W heatsink-to-ambient resistance above a
27 degC ambient settles at 77 degC, with a heating/cooling time constant
of roughly one minute set by the 60 J/K heatsink capacitance.

This model is used for chip-wide, long-time-scale behaviour (it is what
justifies holding the heatsink temperature constant in the block model:
its time constant is ~5 orders of magnitude longer than any block's) and
for the chip-wide boxcar-power comparison of Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.errors import ThermalModelError


@dataclass
class PackageModel:
    """Lumped die + heatsink stack (Figure 2B).

    Two capacitive nodes: the die (small capacitance) couples to the
    heatsink through ``r_die_case``; the heatsink (large capacitance)
    couples to ambient through ``r_heatsink``.
    """

    r_die_case: float = 1.0
    r_heatsink: float = 1.0
    c_die: float = 0.1
    c_heatsink: float = 60.0
    ambient: float = 27.0

    def __post_init__(self) -> None:
        for name in ("r_die_case", "r_heatsink", "c_die", "c_heatsink"):
            if getattr(self, name) <= 0:
                raise ThermalModelError(f"{name} must be positive")
        self.die_temperature = self.ambient
        self.heatsink_temperature = self.ambient

    @property
    def total_resistance(self) -> float:
        """Die-to-ambient thermal resistance [K/W]."""
        return self.r_die_case + self.r_heatsink

    @property
    def dominant_time_constant(self) -> float:
        """The heatsink time constant that dominates transients [s].

        Section 4.1: 60 J/K * 2 K/W on the order of a minute.
        """
        return self.c_heatsink * self.total_resistance

    def steady_state(self, power: float) -> tuple[float, float]:
        """(die, heatsink) steady-state temperatures at constant power."""
        heatsink = self.ambient + power * self.r_heatsink
        die = heatsink + power * self.r_die_case
        return die, heatsink

    def reset(self) -> None:
        """Return both nodes to ambient."""
        self.die_temperature = self.ambient
        self.heatsink_temperature = self.ambient

    def step(self, power: float, dt: float) -> tuple[float, float]:
        """Advance ``dt`` seconds at the given die power (forward Euler).

        Sub-steps automatically to respect the explicit stability bound
        of the fast die node.
        """
        if dt <= 0:
            raise ThermalModelError("dt must be positive")
        die_bound = self.c_die * self.r_die_case
        substeps = max(1, int(math.ceil(dt / (0.25 * die_bound))))
        sub_dt = dt / substeps
        for _ in range(substeps):
            die_to_sink = (self.die_temperature - self.heatsink_temperature)
            die_flow = power - die_to_sink / self.r_die_case
            sink_flow = (
                die_to_sink / self.r_die_case
                - (self.heatsink_temperature - self.ambient) / self.r_heatsink
            )
            self.die_temperature += sub_dt * die_flow / self.c_die
            self.heatsink_temperature += sub_dt * sink_flow / self.c_heatsink
        return self.die_temperature, self.heatsink_temperature
