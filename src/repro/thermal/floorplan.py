"""Per-structure floorplan: areas, peak powers, derived R and C (Table 3).

The paper derives per-structure areas from the MIPS R10000 die photo,
scaled two process generations to 0.18 um and by architectural size.
We encode the resulting areas directly, derive thermal R and C from the
material model (:mod:`repro.thermal.materials`), and attach the peak
power each structure can dissipate (used for power-model scaling and
for the per-structure power-proxy trigger thresholds of Section 6).

``Floorplan.default()`` builds the seven monitored structures the paper
studies (Section 5.2): load-store queue, instruction window, register
file, branch predictor, D-cache, integer execution unit, and FP
execution unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


from repro.errors import ThermalModelError
from repro.thermal import materials


@dataclass(frozen=True)
class Block:
    """One functional block in the thermal floorplan.

    ``resistance`` and ``capacitance`` default to the material-model
    derivation from the block area; explicit values may be supplied for
    sensitivity studies.
    """

    name: str
    area_m2: float
    peak_power: float
    resistance: float = field(default=0.0)
    capacitance: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.area_m2 <= 0:
            raise ThermalModelError(f"{self.name}: area must be positive")
        if self.peak_power <= 0:
            raise ThermalModelError(f"{self.name}: peak power must be positive")
        if not self.resistance:
            object.__setattr__(
                self, "resistance", materials.block_normal_resistance(self.area_m2)
            )
        if not self.capacitance:
            object.__setattr__(
                self, "capacitance", materials.block_capacitance(self.area_m2)
            )
        if self.resistance <= 0 or self.capacitance <= 0:
            raise ThermalModelError(f"{self.name}: R and C must be positive")

    @property
    def time_constant(self) -> float:
        """RC time constant of the block [s]."""
        return self.resistance * self.capacitance

    @property
    def peak_temperature_rise(self) -> float:
        """Steady-state temperature rise over the heatsink at peak power [K]."""
        return self.peak_power * self.resistance


#: Structure names in the paper's Table 3 order.
STRUCTURES: tuple[str, ...] = (
    "lsq",
    "window",
    "regfile",
    "bpred",
    "dcache",
    "int_exec",
    "fp_exec",
)

#: Per-structure areas [m^2] (R10000 die photo, scaled; Table 3).
_AREAS_M2: dict[str, float] = {
    "lsq": 5.0e-6,
    "window": 9.0e-6,
    "regfile": 2.5e-6,
    "bpred": 3.5e-6,
    "dcache": 10.0e-6,
    "int_exec": 5.0e-6,
    "fp_exec": 5.0e-6,
}

#: Per-structure peak power [W] (Wattch-style, 0.18 um / 2.0 V / 1.5 GHz;
#: calibrated so peak steady-state rises span ~1.5-3.2 K -- see DESIGN.md).
_PEAK_POWER_W: dict[str, float] = {
    "lsq": 8.0,
    "window": 20.0,
    "regfile": 8.0,
    "bpred": 8.0,
    "dcache": 16.0,
    "int_exec": 12.0,
    "fp_exec": 12.0,
}

#: Peak power of chip activity outside the monitored structures
#: (I-cache, L2, clock tree, result buses, ...).  Only contributes to
#: chip-wide power totals, never to block temperatures.
UNMONITORED_PEAK_POWER_W = 46.0

#: Total die area including unmonitored logic [m^2] (~1 cm^2 die).
DIE_AREA_M2 = 100.0e-6


@dataclass(frozen=True)
class Floorplan:
    """An ordered collection of thermal blocks plus chip-level constants."""

    blocks: tuple[Block, ...]
    die_area_m2: float = DIE_AREA_M2
    unmonitored_peak_power: float = UNMONITORED_PEAK_POWER_W
    chip_resistance: float = 0.34
    chip_capacitance: float = 60.0

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ThermalModelError("floorplan needs at least one block")
        names = [block.name for block in self.blocks]
        if len(set(names)) != len(names):
            raise ThermalModelError("duplicate block names in floorplan")
        total_area = sum(block.area_m2 for block in self.blocks)
        if total_area >= self.die_area_m2:
            raise ThermalModelError("blocks exceed the die area")

    @classmethod
    def default(cls) -> "Floorplan":
        """The paper's seven-structure floorplan (Table 3)."""
        blocks = tuple(
            Block(name, _AREAS_M2[name], _PEAK_POWER_W[name]) for name in STRUCTURES
        )
        return cls(blocks=blocks)

    @property
    def names(self) -> tuple[str, ...]:
        """Block names in floorplan order."""
        return tuple(block.name for block in self.blocks)

    @property
    def chip_peak_power(self) -> float:
        """Peak power of the whole chip [W]."""
        return (
            sum(block.peak_power for block in self.blocks)
            + self.unmonitored_peak_power
        )

    @property
    def chip_time_constant(self) -> float:
        """Chip + heatsink RC time constant [s] (Table 3 last row)."""
        return self.chip_resistance * self.chip_capacitance

    @property
    def longest_block_time_constant(self) -> float:
        """Largest block RC [s] -- the paper tunes its controllers to this."""
        return max(block.time_constant for block in self.blocks)

    def block(self, name: str) -> Block:
        """Look up a block by name, raising ``ThermalModelError`` if absent."""
        for candidate in self.blocks:
            if candidate.name == name:
                return candidate
        raise ThermalModelError(f"unknown block {name!r}")

    def index(self, name: str) -> int:
        """Position of a named block in floorplan order."""
        for position, candidate in enumerate(self.blocks):
            if candidate.name == name:
                return position
        raise ThermalModelError(f"unknown block {name!r}")

    def with_block(self, name: str, **overrides: float) -> "Floorplan":
        """A copy of this floorplan with one block's fields replaced."""
        self.block(name)  # validate the name before rebuilding
        blocks = tuple(
            replace(block, **overrides) if block.name == name else block
            for block in self.blocks
        )
        return replace(self, blocks=blocks)

    def table3_rows(self) -> list[dict[str, float | str]]:
        """Rows of Table 3: area, peak power, R, C, and RC per structure.

        A chip-wide row (with heatsink) is appended, as in the paper.
        """
        rows: list[dict[str, float | str]] = []
        for block in self.blocks:
            rows.append(
                {
                    "structure": block.name,
                    "area_m2": block.area_m2,
                    "peak_power_w": block.peak_power,
                    "r_k_per_w": block.resistance,
                    "c_j_per_k": block.capacitance,
                    "rc_seconds": block.time_constant,
                }
            )
        rows.append(
            {
                "structure": "chip",
                "area_m2": self.die_area_m2,
                "peak_power_w": self.chip_peak_power,
                "r_k_per_w": self.chip_resistance,
                "c_j_per_k": self.chip_capacitance,
                "rc_seconds": self.chip_time_constant,
            }
        )
        return rows


def scaled_floorplan(area_scale: float = 1.0, power_scale: float = 1.0) -> Floorplan:
    """A default floorplan with all areas/powers scaled (sensitivity studies).

    The paper argues (Section 5.2) that "different ratios and areas of
    structure sizes would not materially affect the main conclusions";
    this helper lets experiments check that claim.
    """
    if area_scale <= 0 or power_scale <= 0:
        raise ThermalModelError("scale factors must be positive")
    blocks = tuple(
        Block(name, _AREAS_M2[name] * area_scale, _PEAK_POWER_W[name] * power_scale)
        for name in STRUCTURES
    )
    return Floorplan(
        blocks=blocks,
        die_area_m2=DIE_AREA_M2 * max(area_scale, 1.0),
        unmonitored_peak_power=UNMONITORED_PEAK_POWER_W * power_scale,
    )
