"""Full-system simulation: workload + power + thermal + DTM.

Two engines share the power, thermal, controller, and DTM code:

* :class:`~repro.sim.simulator.DetailedSimulator` -- drives the
  cycle-level out-of-order core; used for validation, calibration, and
  short detailed studies.
* :class:`~repro.sim.fast.FastEngine` -- replays a profile's calibrated
  activity view one sampling interval at a time with exact exponential
  thermal updates; used for the paper-scale sweeps.  Its
  duty-to-throughput response is calibrated against the detailed core
  (experiment C1).

:class:`~repro.sim.batch.BatchEngine` stacks B independent fast-engine
runs (lanes) through one structure-of-arrays kernel, bit-identical to
running each lane serially; ``run_specs(..., batch=B)`` composes it
with the process-level executor.  :mod:`repro.sim.distributed` shards
a sweep across machines (``run_suite(..., cluster=...)``), with the
same bit-identity contract.
"""

from repro.sim.batch import (
    BatchEngine,
    LaneOutcome,
    batch_compatibility_key,
    plan_batches,
    run_spec_lanes,
    validate_batch,
)
from repro.sim.checkpoint import (
    SWEEP_SCHEMA,
    CheckpointJournal,
    load_checkpoint,
    spec_fingerprint,
)
from repro.sim.fast import FastEngine
from repro.sim.parallel import (
    RetryPolicy,
    SpecFailure,
    SpecOutcome,
    SweepOptions,
    WorkSpec,
    execute_payloads,
    get_default_batch,
    get_default_cluster,
    get_default_jobs,
    get_default_sweep_options,
    matrix_specs,
    resolve_batch,
    run_outcomes,
    run_specs,
    set_default_batch,
    set_default_cluster,
    set_default_jobs,
    set_default_sweep_options,
)

# Imported after parallel: the distributed layer builds on it.
from repro.sim.distributed import (
    ClusterConfig,
    ShardCoordinator,
    run_cluster_outcomes,
    run_worker,
)
from repro.sim.results import History, RunResult
from repro.sim.simulator import DetailedSimulator
from repro.sim.sweep import run_suite

__all__ = [
    "BatchEngine",
    "CheckpointJournal",
    "ClusterConfig",
    "DetailedSimulator",
    "FastEngine",
    "History",
    "LaneOutcome",
    "RetryPolicy",
    "RunResult",
    "SWEEP_SCHEMA",
    "ShardCoordinator",
    "SpecFailure",
    "SpecOutcome",
    "SweepOptions",
    "WorkSpec",
    "batch_compatibility_key",
    "execute_payloads",
    "get_default_batch",
    "get_default_cluster",
    "get_default_jobs",
    "get_default_sweep_options",
    "load_checkpoint",
    "matrix_specs",
    "plan_batches",
    "resolve_batch",
    "run_cluster_outcomes",
    "run_outcomes",
    "run_spec_lanes",
    "run_specs",
    "run_suite",
    "run_worker",
    "set_default_batch",
    "set_default_cluster",
    "set_default_jobs",
    "set_default_sweep_options",
    "spec_fingerprint",
    "validate_batch",
]
