"""Suite sweeps: run (benchmark x policy) matrices on the fast engine.

The experiment drivers build on :func:`run_suite`, which runs every
requested benchmark under every requested policy (plus the unmanaged
baseline needed for relative-IPC metrics) with shared configuration and
deterministic seeding.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.config import DTMConfig, MachineConfig, ThermalConfig
from repro.control.pid import AntiWindup
from repro.dtm.mechanisms import FetchToggling
from repro.dtm.policies import make_policy
from repro.errors import SimulationError
from repro.faults import FaultSchedule, FaultyActuator, FaultySensor
from repro.sim.fast import FastEngine
from repro.sim.results import RunResult
from repro.telemetry.core import ensure_telemetry
from repro.thermal.floorplan import Floorplan
from repro.thermal.sensors import IdealSensor
from repro.workloads.profiles import BENCHMARKS, get_profile

#: Default instruction budget per run (fast-engine samples are cheap;
#: this covers hundreds of thermal time constants).
DEFAULT_INSTRUCTIONS: int = 2_000_000


def _validate_instructions(instructions: float) -> float:
    """Reject non-positive, non-finite, or fractional budgets early.

    These used to slip through to the engine (``instructions=0`` ran
    zero samples and divided by zero cycles; ``1e6 + 0.5`` silently
    committed half an instruction of budget accounting error).
    """
    try:
        instructions = float(instructions)
    except (TypeError, ValueError):
        raise SimulationError(
            f"instructions must be a number, got {instructions!r}"
        ) from None
    if not math.isfinite(instructions) or instructions <= 0:
        raise SimulationError(
            f"instructions must be a positive finite count, "
            f"got {instructions!r}"
        )
    if instructions != int(instructions):
        raise SimulationError(
            f"instructions must be a whole number of instructions, "
            f"got {instructions!r}"
        )
    return instructions


def build_engine(
    benchmark: str,
    policy_name: str,
    floorplan: Floorplan | None = None,
    machine: MachineConfig | None = None,
    thermal_config: ThermalConfig | None = None,
    dtm_config: DTMConfig | None = None,
    seed: int = 0,
    record_history: bool = False,
    anti_windup: AntiWindup = AntiWindup.CONDITIONAL,
    setpoint: float | None = None,
    sensor=None,
    policy=None,
    fault_schedule: FaultSchedule | None = None,
    failsafe=None,
    telemetry=None,
) -> FastEngine:
    """Build (but do not run) the engine :func:`run_one` would run.

    The single factory path behind both the serial sweep and the
    lane-batched engine (:mod:`repro.sim.batch`): policy construction,
    fault-injection wrapping, and engine assembly happen here once, so
    a batched lane starts from an engine bit-identical to its serial
    counterpart.
    """
    floorplan = floorplan if floorplan is not None else Floorplan.default()
    if policy is None:
        policy = make_policy(
            policy_name,
            floorplan,
            dtm_config,
            anti_windup=anti_windup,
            setpoint=setpoint,
        )
    actuator = None
    if fault_schedule is not None:
        sensor = FaultySensor(
            sensor if sensor is not None else IdealSensor(),
            fault_schedule,
            telemetry=telemetry,
        )
        if (
            fault_schedule.actuator_stuck_windows
            or fault_schedule.actuator_ignore_windows
        ):
            config = dtm_config if dtm_config is not None else DTMConfig()
            actuator = FaultyActuator(
                FetchToggling(config.toggle_levels),
                fault_schedule,
                telemetry=telemetry,
            )
    engine = FastEngine(
        get_profile(benchmark),
        policy=policy,
        floorplan=floorplan,
        machine=machine,
        thermal_config=thermal_config,
        dtm_config=dtm_config,
        seed=seed,
        record_history=record_history,
        sensor=sensor,
        failsafe=failsafe,
        actuator=actuator,
        telemetry=telemetry,
    )
    return engine


def run_one(
    benchmark: str,
    policy_name: str,
    instructions: float = DEFAULT_INSTRUCTIONS,
    floorplan: Floorplan | None = None,
    machine: MachineConfig | None = None,
    thermal_config: ThermalConfig | None = None,
    dtm_config: DTMConfig | None = None,
    seed: int = 0,
    record_history: bool = False,
    anti_windup: AntiWindup = AntiWindup.CONDITIONAL,
    setpoint: float | None = None,
    sensor=None,
    policy=None,
    fault_schedule: FaultSchedule | None = None,
    failsafe=None,
    telemetry=None,
) -> RunResult:
    """Run one benchmark under one named policy.

    Pass a prebuilt ``policy`` object to bypass the name-based factory
    (used for custom policies such as the hierarchical extension).

    ``fault_schedule`` wraps the sensor (default: an ideal one) in a
    :class:`~repro.faults.sensor.FaultySensor` and, when the schedule
    carries actuator windows, the actuator in a
    :class:`~repro.faults.actuator.FaultyActuator`.  ``failsafe`` is a
    :class:`~repro.config.FailsafeConfig` (or prebuilt guard) enabling
    the failsafe DTM layer.  ``telemetry`` is a
    :class:`~repro.telemetry.core.Telemetry` observing the run
    (metrics, per-sample trace, span profile); fault injectors and the
    failsafe guard report their events onto its trace stream.
    """
    instructions = _validate_instructions(instructions)
    engine = build_engine(
        benchmark,
        policy_name,
        floorplan=floorplan,
        machine=machine,
        thermal_config=thermal_config,
        dtm_config=dtm_config,
        seed=seed,
        record_history=record_history,
        anti_windup=anti_windup,
        setpoint=setpoint,
        sensor=sensor,
        policy=policy,
        fault_schedule=fault_schedule,
        failsafe=failsafe,
        telemetry=telemetry,
    )
    return engine.run(instructions=instructions)


def run_suite(
    policies: Iterable[str],
    benchmarks: Iterable[str] | None = None,
    instructions: float = DEFAULT_INSTRUCTIONS,
    floorplan: Floorplan | None = None,
    machine: MachineConfig | None = None,
    thermal_config: ThermalConfig | None = None,
    dtm_config: DTMConfig | None = None,
    seed: int = 0,
    include_baseline: bool = True,
    telemetry=None,
    jobs: int | None = None,
    options=None,
    batch: int | None = None,
    cluster=None,
    cache=None,
) -> Mapping[tuple[str, str], RunResult]:
    """Run the full (benchmark x policy) matrix.

    Returns results keyed by ``(benchmark, policy)``; the unmanaged
    baseline is included under policy name ``"none"`` unless disabled.

    A single ``telemetry`` instance is shared across every run: trace
    records are tagged with their (benchmark, policy) context, metrics
    aggregate over the whole sweep, and the profiler accumulates one
    ``sweep.run_suite`` span around per-run ``engine.run`` spans.

    ``jobs`` fans the matrix out over worker processes via
    :mod:`repro.sim.parallel` (``None`` defers to
    :func:`~repro.sim.parallel.get_default_jobs`, ``0`` means all
    cores).  Results and folded-back telemetry are bit-identical to the
    serial sweep (property-tested); only profiler spans differ, as the
    per-run ``engine.run`` spans happen in worker processes.

    ``options`` (a :class:`~repro.sim.parallel.SweepOptions`, or the
    process-wide default installed via
    :func:`~repro.sim.parallel.set_default_sweep_options`) enables the
    fault-tolerant orchestrator: retries, per-spec timeouts,
    checkpoint/resume, and failure isolation.  A spec that fails
    permanently under a non-strict policy is *omitted* from the
    returned mapping (its ``sweep.spec_failed`` event carries the
    details); with ``options.strict`` the sweep raises one aggregated
    :class:`~repro.errors.SweepError` instead.

    ``batch`` is the lane-batch width (see :mod:`repro.sim.batch`):
    groups of up to ``batch`` compatible runs advance through one
    vectorized :class:`~repro.sim.batch.BatchEngine` kernel, inside
    each worker process when ``jobs > 1``.  ``None`` defers to
    :func:`~repro.sim.parallel.get_default_batch`.  Batched results
    and telemetry are bit-identical to the serial sweep.

    ``cluster`` (a :class:`~repro.sim.distributed.ClusterConfig`, or
    the process-wide default installed via
    :func:`~repro.sim.parallel.set_default_cluster`) shards the matrix
    across distributed workers instead of executing locally: this
    process becomes the coordinator, and ``jobs``/``batch`` apply on
    each worker's own command line.  Results and telemetry stay
    bit-identical to the local sweep (see docs/performance.md,
    "Level 4").

    ``cache`` routes the matrix through the cross-sweep result cache
    (:mod:`repro.sim.cache`; ``None`` defers to
    :func:`~repro.sim.parallel.resolve_cache`, i.e. the process-wide
    default or ``REPRO_CACHE``): previously completed runs replay
    bit-identically instead of executing, fresh runs write back.  See
    docs/performance.md, "Level 5".
    """
    # Imported here: parallel builds on this module's run_one/defaults.
    from repro.sim.parallel import (
        get_default_cluster,
        get_default_sweep_options,
        matrix_specs,
        resolve_batch,
        resolve_cache,
        resolve_jobs,
        run_specs,
    )

    instructions = _validate_instructions(instructions)
    telemetry = ensure_telemetry(telemetry)
    chosen_benchmarks = (
        list(benchmarks) if benchmarks is not None else list(BENCHMARKS)
    )
    chosen_policies = list(policies)
    if include_baseline and "none" not in chosen_policies:
        chosen_policies.insert(0, "none")
    results: dict[tuple[str, str], RunResult] = {}
    jobs = resolve_jobs(jobs, len(chosen_benchmarks) * len(chosen_policies))
    batch = resolve_batch(batch)
    if options is None:
        options = get_default_sweep_options()
    if cluster is None:
        cluster = get_default_cluster()
    store = resolve_cache(cache)
    if (
        jobs > 1
        or options is not None
        or batch > 1
        or cluster is not None
        or store is not None
    ):
        specs = matrix_specs(
            chosen_benchmarks,
            chosen_policies,
            seeds=(seed,),
            instructions=instructions,
            floorplan=floorplan,
            machine=machine,
            thermal_config=thermal_config,
            dtm_config=dtm_config,
        )
        with telemetry.span("sweep.run_suite"):
            run_results = run_specs(
                specs,
                jobs=jobs,
                telemetry=telemetry,
                options=options,
                batch=batch,
                cluster=cluster,
                cache=store if store is not None else False,
            )
        for spec, result in zip(specs, run_results):
            if result is not None:
                results[(spec.benchmark, spec.policy)] = result
        return results
    with telemetry.span("sweep.run_suite"):
        for benchmark in chosen_benchmarks:
            for policy_name in chosen_policies:
                results[(benchmark, policy_name)] = run_one(
                    benchmark,
                    policy_name,
                    instructions=instructions,
                    floorplan=floorplan,
                    machine=machine,
                    thermal_config=thermal_config,
                    dtm_config=dtm_config,
                    seed=seed,
                    telemetry=None if not telemetry.enabled else telemetry,
                )
    return results


def suite_summary(
    results: Mapping[tuple[str, str], RunResult], policy_name: str
) -> dict[str, float]:
    """Mean relative IPC and emergency fraction for one policy.

    Averages over every benchmark present in ``results`` that has both
    a managed run and a ``"none"`` baseline.
    """
    relative = []
    emergencies = []
    for (benchmark, name), result in results.items():
        if name != policy_name:
            continue
        baseline = results.get((benchmark, "none"))
        if baseline is None:
            continue
        relative.append(result.relative_ipc(baseline))
        emergencies.append(result.emergency_fraction)
    if not relative:
        return {"mean_relative_ipc": 0.0, "mean_emergency_fraction": 0.0}
    return {
        "mean_relative_ipc": sum(relative) / len(relative),
        "mean_emergency_fraction": sum(emergencies) / len(emergencies),
    }
