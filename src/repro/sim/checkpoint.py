"""Crash-safe sweep checkpointing: the ``repro.sweep/v1`` journal.

A fault-tolerant sweep (:func:`repro.sim.parallel.run_outcomes`) can be
killed at any instant -- a worker ``os._exit``, an OOM kill, a Ctrl-C,
a machine reboot.  This module persists every *completed* spec so a
restarted sweep re-runs only the incomplete ones:

* :class:`CheckpointJournal` -- an append-only JSONL file.  Line 1 is a
  schema header (``repro.sweep/v1``); every further line is one
  completed spec: its order-independent fingerprint, attempt count, the
  full :class:`~repro.sim.results.RunResult` (history included), and
  the run's worker-local telemetry (retained records, events, metrics,
  meta).  Each line is flushed and ``fsync``'d before the outcome is
  reported upward, so the journal never claims work the disk has not
  seen.  A crash mid-write leaves at most one truncated final line,
  which both the loader and the append path tolerate (the partial line
  is discarded; that spec simply re-runs).
* :func:`spec_fingerprint` -- a canonical content hash of a
  :class:`~repro.sim.parallel.WorkSpec` (names, frozen configs, fault
  schedules...), stable across processes and sessions.  Resume matches
  saved outcomes by fingerprint *multiset*, so reordering the spec list
  or interleaving several sweeps through one journal still resumes
  correctly, and duplicate specs each consume one saved outcome.
* :func:`fold_saved_telemetry` -- re-emits a saved run's telemetry onto
  a live sink exactly like
  :func:`~repro.telemetry.core.merge_telemetry` does for a live
  worker's, which is what makes a resumed sweep's retained traces
  bit-identical to an uninterrupted one (telemetry is folded in spec
  order either way; floats survive the JSON round trip exactly because
  ``repr``-based float serialization is lossless).

The journal is a cache keyed by content: two sweeps that share a spec
(same fingerprint) share its saved outcome, because every run is a pure
function of its spec.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path
from typing import IO

import numpy as np

from repro.errors import CheckpointError
from repro.sim.results import History, RunResult
from repro.telemetry.core import ensure_telemetry
from repro.telemetry.export import event_from_dict, record_from_dict

#: Version tag written into every journal header; bumped on any change
#: to the line format.  Loading a journal with a different schema is a
#: :class:`CheckpointError`, never a silent misread.
SWEEP_SCHEMA = "repro.sweep/v1"


# -- spec fingerprints --------------------------------------------------------
def _canonical(value):
    """A deterministic, hashable view of one spec field.

    Dataclasses (frozen configs, floorplans) flatten to (type, field)
    tuples; plain objects such as :class:`~repro.faults.FaultSchedule`
    flatten to their public attributes (underscore-prefixed attributes
    are excluded -- lazily-built caches must not perturb the hash);
    enums to their value; arrays to nested lists.  ``repr`` of the
    result contains no memory addresses, so equal-valued specs
    fingerprint identically across processes and sessions.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _canonical(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, enum.Enum):
        return (type(value).__name__, _canonical(value.value))
    if isinstance(value, np.ndarray):
        return (value.dtype.str, tuple(value.shape), tuple(value.ravel().tolist()))
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, (dict,)):
        return tuple(
            sorted((str(key), _canonical(item)) for key, item in value.items())
        )
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        return (
            type(value).__name__,
            tuple(
                sorted(
                    (name, _canonical(item))
                    for name, item in attrs.items()
                    if not name.startswith("_")
                )
            ),
        )
    return repr(value)


def spec_fingerprint(spec) -> str:
    """Content hash of one :class:`~repro.sim.parallel.WorkSpec`."""
    text = repr(_canonical(spec))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


# -- result (de)serialization -------------------------------------------------
def _jsonable(value):
    """Map numpy scalars to Python scalars so ``json.dumps`` accepts them."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


def history_to_dict(history: History) -> dict:
    """JSON view of a :class:`History` (arrays as nested lists + dtype)."""
    arrays = {}
    for name in (
        "max_temp",
        "duty",
        "chip_power",
        "block_temps",
        "block_powers",
        "block_emergency",
        "block_stress",
    ):
        array = getattr(history, name)
        arrays[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "data": array.ravel().tolist(),
        }
    return {
        "sample_cycles": history.sample_cycles,
        "names": list(history.names),
        "arrays": arrays,
    }


def history_from_dict(data: dict) -> History:
    """Rebuild a :class:`History` saved by :func:`history_to_dict`."""
    arrays = {
        name: np.array(spec["data"], dtype=np.dtype(spec["dtype"])).reshape(
            spec["shape"]
        )
        for name, spec in data["arrays"].items()
    }
    return History(
        sample_cycles=data["sample_cycles"],
        names=tuple(data["names"]),
        **arrays,
    )


def result_to_dict(result: RunResult) -> dict:
    """JSON view of a :class:`RunResult` (history included).

    Multicore results (from :class:`~repro.sim.parallel.WorkSpec`\\ s
    with ``core_benchmarks``) serialize under ``"kind": "multicore"``
    so journals can hold both result types side by side.
    """
    # Imported lazily: checkpoint is core sweep machinery; multicore is
    # an optional extension layered on top of it.
    from repro.multicore.results import MulticoreRunResult

    if isinstance(result, MulticoreRunResult):
        return {
            "kind": "multicore",
            "policy": result.policy,
            "coordinator": result.coordinator,
            "cycles": result.cycles,
            "cores": [dataclasses.asdict(core) for core in result.cores],
            "emergency_fraction": result.emergency_fraction,
            "stress_fraction": result.stress_fraction,
            "mean_chip_power": result.mean_chip_power,
            "max_chip_power": result.max_chip_power,
            "energy_joules": result.energy_joules,
            "extra": dict(result.extra),
        }
    return {
        "benchmark": result.benchmark,
        "policy": result.policy,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "emergency_fraction": result.emergency_fraction,
        "stress_fraction": result.stress_fraction,
        "block_emergency_fraction": dict(result.block_emergency_fraction),
        "block_stress_fraction": dict(result.block_stress_fraction),
        "mean_block_temperature": dict(result.mean_block_temperature),
        "max_block_temperature": dict(result.max_block_temperature),
        "mean_chip_power": result.mean_chip_power,
        "max_chip_power": result.max_chip_power,
        "energy_joules": result.energy_joules,
        "engaged_fraction": result.engaged_fraction,
        "interrupt_events": result.interrupt_events,
        "interrupt_stall_cycles": result.interrupt_stall_cycles,
        "history": (
            history_to_dict(result.history)
            if result.history is not None
            else None
        ),
        "extra": dict(result.extra),
    }


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a result saved by :func:`result_to_dict`.

    Returns a :class:`RunResult`, or a
    :class:`~repro.multicore.results.MulticoreRunResult` for entries
    tagged ``"kind": "multicore"``.
    """
    if data.get("kind") == "multicore":
        from repro.multicore.results import CoreResult, MulticoreRunResult

        return MulticoreRunResult(
            policy=data["policy"],
            coordinator=data["coordinator"],
            cycles=data["cycles"],
            cores=tuple(
                CoreResult(**{**core, "extra": dict(core.get("extra", {}))})
                for core in data["cores"]
            ),
            emergency_fraction=data["emergency_fraction"],
            stress_fraction=data["stress_fraction"],
            mean_chip_power=data["mean_chip_power"],
            max_chip_power=data["max_chip_power"],
            energy_joules=data.get("energy_joules", 0.0),
            extra=dict(data.get("extra", {})),
        )
    history = data.get("history")
    return RunResult(
        benchmark=data["benchmark"],
        policy=data["policy"],
        cycles=data["cycles"],
        instructions=data["instructions"],
        emergency_fraction=data["emergency_fraction"],
        stress_fraction=data["stress_fraction"],
        block_emergency_fraction=dict(data["block_emergency_fraction"]),
        block_stress_fraction=dict(data["block_stress_fraction"]),
        mean_block_temperature=dict(data["mean_block_temperature"]),
        max_block_temperature=dict(data["max_block_temperature"]),
        mean_chip_power=data["mean_chip_power"],
        max_chip_power=data["max_chip_power"],
        energy_joules=data.get("energy_joules", 0.0),
        engaged_fraction=data.get("engaged_fraction", 0.0),
        interrupt_events=data.get("interrupt_events", 0),
        interrupt_stall_cycles=data.get("interrupt_stall_cycles", 0),
        history=history_from_dict(history) if history is not None else None,
        extra=dict(data.get("extra", {})),
    )


# -- telemetry (de)serialization ----------------------------------------------
def telemetry_to_dict(local) -> dict | None:
    """JSON view of one run's worker-local retain-everything telemetry."""
    if local is None:
        return None
    return {
        "records": [record.to_dict() for record in local.trace.records()],
        "events": [event.to_dict() for event in local.trace.events],
        "metrics": local.metrics.snapshot(),
        "meta": dict(local.meta),
    }


def fold_saved_telemetry(sink, payload: dict | None) -> None:
    """Re-emit one saved run's telemetry onto a live sink.

    Mirrors :func:`~repro.telemetry.core.merge_telemetry` exactly:
    records and events re-emit through the sink's own retention policy,
    metrics fold under the registry's associative merge, meta updates.
    No-op when the sink is disabled or the journal entry carries no
    telemetry (it was written by a telemetry-less sweep).
    """
    sink = ensure_telemetry(sink)
    if not sink.enabled or payload is None:
        return
    for data in payload.get("records", ()):
        sink.trace.record(record_from_dict(data))
    for data in payload.get("events", ()):
        sink.trace.events.append(event_from_dict(data))
    sink.metrics.merge_snapshot(payload.get("metrics", {}))
    if payload.get("meta"):
        sink.meta.update(payload["meta"])


# -- the journal --------------------------------------------------------------
class CheckpointJournal:
    """Append-only, fsync'd JSONL journal of completed sweep specs.

    Use :meth:`open` (fresh or resuming) rather than the constructor.
    """

    def __init__(self, path: str | Path, handle: IO[str]) -> None:
        self.path = Path(path)
        self._handle = handle

    # -- writing -------------------------------------------------------------
    @classmethod
    def open(
        cls, path: str | Path, resume: bool = False
    ) -> "CheckpointJournal":
        """Open a journal for appending.

        ``resume=False`` starts fresh (an existing file is replaced);
        ``resume=True`` keeps existing outcomes, first truncating any
        partial final line a crash may have left.  Either way the
        header is guaranteed to be present afterwards.
        """
        path = Path(path)
        if resume and path.exists():
            _truncate_partial_tail(path)
            handle = path.open("a", encoding="utf-8")
            journal = cls(path, handle)
            if path.stat().st_size == 0:
                journal._write_line({"type": "header", "schema": SWEEP_SCHEMA})
            return journal
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = path.open("w", encoding="utf-8")
        journal = cls(path, handle)
        journal._write_line({"type": "header", "schema": SWEEP_SCHEMA})
        return journal

    def _write_line(self, data: dict) -> None:
        try:
            line = json.dumps(_jsonable(data))
        except (TypeError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint entry is not JSON-serializable: {error}"
            ) from error
        self._handle.write(line + "\n")
        # Durability before acknowledgement: the orchestrator reports a
        # spec complete only after its journal line is on disk.
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_outcome(
        self,
        fingerprint: str,
        spec,
        attempts: int,
        result: RunResult,
        local_telemetry=None,
    ) -> None:
        """Journal one successfully completed spec."""
        self._write_line(
            {
                "type": "outcome",
                "fingerprint": fingerprint,
                "benchmark": spec.benchmark,
                "policy": spec.policy,
                "seed": spec.seed,
                "attempts": attempts,
                "result": result_to_dict(result),
                "telemetry": telemetry_to_dict(local_telemetry),
            }
        )

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _truncate_partial_tail(path: Path) -> None:
    """Drop a truncated final line left by a crash mid-append."""
    raw = path.read_bytes()
    if not raw or raw.endswith(b"\n"):
        return
    cut = raw.rfind(b"\n")
    with path.open("r+b") as handle:
        handle.truncate(cut + 1 if cut >= 0 else 0)


def load_checkpoint(path: str | Path) -> dict[str, list[dict]]:
    """Saved outcomes of a journal, keyed by fingerprint (a multiset).

    Returns ``{fingerprint: [entry, ...]}`` in journal order; resume
    pops one entry per matching spec.  A missing file is an empty
    checkpoint.  A truncated final line (crash mid-write) is discarded;
    corruption anywhere else, or a schema mismatch, raises
    :class:`CheckpointError`.
    """
    path = Path(path)
    if not path.exists():
        return {}
    saved: dict[str, list[dict]] = {}
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    header_seen = False
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError as error:
            if number == len(lines):
                break  # crash-truncated tail: that spec just re-runs
            raise CheckpointError(
                f"{path}:{number}: corrupt journal line ({error})"
            ) from error
        kind = data.get("type")
        if kind == "header":
            schema = data.get("schema")
            if schema != SWEEP_SCHEMA:
                raise CheckpointError(
                    f"{path}: schema {schema!r} is not {SWEEP_SCHEMA!r}"
                )
            header_seen = True
        elif kind == "outcome":
            if not header_seen:
                raise CheckpointError(f"{path}: outcome before header")
            saved.setdefault(data["fingerprint"], []).append(data)
        else:
            raise CheckpointError(
                f"{path}:{number}: unknown journal line type {kind!r}"
            )
    if lines and not header_seen:
        raise CheckpointError(f"{path}: missing {SWEEP_SCHEMA} header")
    return saved
