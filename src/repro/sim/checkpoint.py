"""Crash-safe sweep checkpointing: the ``repro.sweep/v1`` journal.

A fault-tolerant sweep (:func:`repro.sim.parallel.run_outcomes`) can be
killed at any instant -- a worker ``os._exit``, an OOM kill, a Ctrl-C,
a machine reboot.  This module persists every *completed* spec so a
restarted sweep re-runs only the incomplete ones:

* :class:`CheckpointJournal` -- an append-only JSONL file.  Line 1 is a
  schema header (``repro.sweep/v1``); every further line is one
  completed spec: its order-independent fingerprint, attempt count, the
  full :class:`~repro.sim.results.RunResult` (history included), and
  the run's worker-local telemetry (retained records, events, metrics,
  meta).  Each line is flushed and ``fsync``'d before the outcome is
  reported upward, so the journal never claims work the disk has not
  seen.  A crash mid-write leaves at most one truncated final line,
  which both the loader and the append path tolerate (the partial line
  is discarded; that spec simply re-runs).
* :func:`spec_fingerprint` -- a canonical content hash of a
  :class:`~repro.sim.parallel.WorkSpec` (names, frozen configs, fault
  schedules...), stable across processes and sessions.  Resume matches
  saved outcomes by fingerprint *multiset*, so reordering the spec list
  or interleaving several sweeps through one journal still resumes
  correctly, and duplicate specs each consume one saved outcome.
* :func:`fold_saved_telemetry` -- re-emits a saved run's telemetry onto
  a live sink exactly like
  :func:`~repro.telemetry.core.merge_telemetry` does for a live
  worker's, which is what makes a resumed sweep's retained traces
  bit-identical to an uninterrupted one (telemetry is folded in spec
  order either way; floats survive the JSON round trip exactly because
  ``repr``-based float serialization is lossless).

The journal is a cache keyed by content: two sweeps that share a spec
(same fingerprint) share its saved outcome, because every run is a pure
function of its spec.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path
from typing import IO

import numpy as np

from repro.errors import CheckpointError
from repro.sim.codec import (
    _jsonable,
    fold_saved_telemetry,
    history_from_dict,
    history_to_dict,
    result_from_dict,
    result_to_dict,
    telemetry_to_dict,
)
from repro.sim.results import RunResult

#: Version tag written into every journal header; bumped on any change
#: to the line format.  Loading a journal with a different schema is a
#: :class:`CheckpointError`, never a silent misread.
SWEEP_SCHEMA = "repro.sweep/v1"


# -- spec fingerprints --------------------------------------------------------
def _canonical(value):
    """A deterministic, hashable view of one spec field.

    Dataclasses (frozen configs, floorplans) flatten to (type, field)
    tuples; plain objects such as :class:`~repro.faults.FaultSchedule`
    flatten to their public attributes (underscore-prefixed attributes
    are excluded -- lazily-built caches must not perturb the hash);
    enums to their value; arrays to nested lists.  ``repr`` of the
    result contains no memory addresses, so equal-valued specs
    fingerprint identically across processes and sessions.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _canonical(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, enum.Enum):
        return (type(value).__name__, _canonical(value.value))
    if isinstance(value, np.ndarray):
        return (value.dtype.str, tuple(value.shape), tuple(value.ravel().tolist()))
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, (dict,)):
        return tuple(
            sorted((str(key), _canonical(item)) for key, item in value.items())
        )
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        return (
            type(value).__name__,
            tuple(
                sorted(
                    (name, _canonical(item))
                    for name, item in attrs.items()
                    if not name.startswith("_")
                )
            ),
        )
    return repr(value)


def spec_fingerprint(spec) -> str:
    """Content hash of one :class:`~repro.sim.parallel.WorkSpec`."""
    text = repr(_canonical(spec))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


# -- shared codec re-exports --------------------------------------------------
# The result/telemetry codec lives in :mod:`repro.sim.codec` (the shard
# protocol shares it verbatim); these names stay importable here because
# the journal format is defined in their terms.
__all__ = [
    "SWEEP_SCHEMA",
    "CheckpointJournal",
    "fold_saved_telemetry",
    "history_from_dict",
    "history_to_dict",
    "load_checkpoint",
    "result_from_dict",
    "result_to_dict",
    "spec_fingerprint",
    "telemetry_to_dict",
    "truncate_partial_tail",
]


# -- the journal --------------------------------------------------------------
class CheckpointJournal:
    """Append-only, fsync'd JSONL journal of completed sweep specs.

    Use :meth:`open` (fresh or resuming) rather than the constructor.
    """

    def __init__(self, path: str | Path, handle: IO[str]) -> None:
        self.path = Path(path)
        self._handle = handle

    # -- writing -------------------------------------------------------------
    @classmethod
    def open(
        cls, path: str | Path, resume: bool = False
    ) -> "CheckpointJournal":
        """Open a journal for appending.

        ``resume=False`` starts fresh (an existing file is replaced);
        ``resume=True`` keeps existing outcomes, first truncating any
        partial final line a crash may have left.  Either way the
        header is guaranteed to be present afterwards.
        """
        path = Path(path)
        if resume and path.exists():
            _truncate_partial_tail(path)
            handle = path.open("a", encoding="utf-8")
            journal = cls(path, handle)
            if path.stat().st_size == 0:
                journal._write_line({"type": "header", "schema": SWEEP_SCHEMA})
            return journal
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = path.open("w", encoding="utf-8")
        journal = cls(path, handle)
        journal._write_line({"type": "header", "schema": SWEEP_SCHEMA})
        return journal

    def _write_line(self, data: dict) -> None:
        try:
            line = json.dumps(_jsonable(data))
        except (TypeError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint entry is not JSON-serializable: {error}"
            ) from error
        self._handle.write(line + "\n")
        # Durability before acknowledgement: the orchestrator reports a
        # spec complete only after its journal line is on disk.
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_outcome(
        self,
        fingerprint: str,
        spec,
        attempts: int,
        result: RunResult,
        local_telemetry=None,
    ) -> None:
        """Journal one successfully completed spec."""
        self.append_payload(
            fingerprint,
            spec,
            attempts,
            result_to_dict(result),
            telemetry_to_dict(local_telemetry),
        )

    def append_payload(
        self,
        fingerprint: str,
        spec,
        attempts: int,
        result_payload: dict,
        telemetry_payload: dict | None,
    ) -> None:
        """Journal one completed spec from already-encoded wire payloads.

        The shard coordinator receives results as codec dicts over TCP
        and journals them verbatim -- re-decoding and re-encoding would
        only risk drift, since the worker already used the same codec.
        """
        self._write_line(
            {
                "type": "outcome",
                "fingerprint": fingerprint,
                "benchmark": spec.benchmark,
                "policy": spec.policy,
                "seed": spec.seed,
                "attempts": attempts,
                "result": result_payload,
                "telemetry": telemetry_payload,
            }
        )

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def truncate_partial_tail(path: Path) -> None:
    """Drop a truncated final line left by a crash mid-append.

    Shared by the checkpoint journal and the cross-sweep result cache
    (:mod:`repro.sim.cache`): both are append-only JSONL logs with the
    same crash contract -- a kill mid-write leaves at most one partial
    final line, which the next writer cuts before appending.  Complete
    lines are never touched, so byte offsets held by concurrent readers
    of the same file stay valid.
    """
    raw = path.read_bytes()
    if not raw or raw.endswith(b"\n"):
        return
    cut = raw.rfind(b"\n")
    with path.open("r+b") as handle:
        handle.truncate(cut + 1 if cut >= 0 else 0)


#: Backwards-compatible private alias (pre-cache internal name).
_truncate_partial_tail = truncate_partial_tail


def load_checkpoint(path: str | Path) -> dict[str, list[dict]]:
    """Saved outcomes of a journal, keyed by fingerprint (a multiset).

    Returns ``{fingerprint: [entry, ...]}`` in journal order; resume
    pops one entry per matching spec.  A missing file is an empty
    checkpoint.  A truncated final line (crash mid-write) is discarded;
    corruption anywhere else, or a schema mismatch, raises
    :class:`CheckpointError`.
    """
    path = Path(path)
    if not path.exists():
        return {}
    saved: dict[str, list[dict]] = {}
    with path.open("r", encoding="utf-8") as handle:
        lines = handle.readlines()
    header_seen = False
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError as error:
            if number == len(lines):
                break  # crash-truncated tail: that spec just re-runs
            raise CheckpointError(
                f"{path}:{number}: corrupt journal line ({error})"
            ) from error
        kind = data.get("type")
        if kind == "header":
            schema = data.get("schema")
            if schema != SWEEP_SCHEMA:
                raise CheckpointError(
                    f"{path}: schema {schema!r} is not {SWEEP_SCHEMA!r}"
                )
            header_seen = True
        elif kind == "outcome":
            if not header_seen:
                raise CheckpointError(f"{path}: outcome before header")
            saved.setdefault(data["fingerprint"], []).append(data)
        else:
            raise CheckpointError(
                f"{path}:{number}: unknown journal line type {kind!r}"
            )
    if lines and not header_seen:
        raise CheckpointError(f"{path}: missing {SWEEP_SCHEMA} header")
    return saved
