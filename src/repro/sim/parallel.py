"""The parallel sweep executor: fan (benchmark x policy x seed) matrices
out over worker processes, tolerating worker crashes along the way.

Every experiment driver funnels through :func:`repro.sim.sweep.run_suite`
(or a hand-rolled loop over :func:`repro.sim.sweep.run_one`), and a full
paper reproduction runs hundreds of independent simulations.  Each run
is CPU-bound pure Python/NumPy with no shared mutable state, which makes
the matrix embarrassingly parallel -- but only if the observability
guarantees survive the fan-out.  This module provides:

* :class:`WorkSpec` -- a picklable, self-contained description of one
  run (names + frozen config dataclasses, never live objects), so a
  worker process can rebuild the exact engine the serial path would
  have built;
* :func:`run_specs` -- execute a list of specs either serially (sharing
  the caller's telemetry sink, exactly like the classic loop) or on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, folding each
  worker's local telemetry back into the sink **in spec order**;
* :func:`run_outcomes` + :class:`SweepOptions` / :class:`RetryPolicy` --
  the fault-tolerant orchestration layer: per-spec wall-clock timeouts,
  bounded deterministic-backoff retries, ``BrokenProcessPool`` recovery
  (rebuild the pool, re-run only the lost in-flight specs, degrade to
  in-process serial execution after repeated pool deaths), failure
  isolation as structured :class:`SpecOutcome` values, and a crash-safe
  checkpoint journal (:mod:`repro.sim.checkpoint`) for ``--resume``;
* :func:`matrix_specs` -- build the (benchmark x policy x seed) spec
  list in the canonical benchmark-major order used by ``run_suite``;
* :func:`set_default_jobs` / :func:`get_default_jobs` and
  :func:`set_default_sweep_options` / :func:`get_default_sweep_options`
  -- process-wide defaults so ``--jobs`` / ``--retries`` / ``--resume``
  on a driver's command line reach every ``run_suite`` call inside
  table modules without threading parameters through each one.

Determinism and telemetry parity
--------------------------------

Results are returned in spec order regardless of completion order, and
every engine is seeded from its spec alone, so ``jobs=N`` is
bit-identical to ``jobs=1`` (property-tested).  Telemetry parity works
because trace decimation is a pure function of the emit sequence:
workers record into a *retain-everything* local
:class:`~repro.telemetry.core.Telemetry` (huge capacity, no decimation)
and the parent re-emits each worker's records onto the sink via
:func:`~repro.telemetry.core.merge_telemetry` in spec order -- the sink
therefore sees the exact emit sequence a serial sweep would have
produced, and retains the exact same records, events, and metrics.  The
one documented difference: profiler *span* timings are per-process
wall-clock and are deliberately not merged, so a parallel sweep's sink
carries the parent's spans only (no per-run ``engine.run`` spans).

The fault-tolerant layer preserves the same guarantee: a failed attempt
contributes *no* telemetry (only the final successful attempt of each
spec is folded, in spec order), and a ``--resume`` sweep re-folds the
journaled telemetry of already-completed specs in spec order, so its
results and retained traces are bit-identical to an uninterrupted sweep
(property-tested).  Orchestration diagnostics -- ``sweep.retry``,
``sweep.timeout``, ``sweep.pool_crash``, ``sweep.degraded``,
``sweep.spec_failed``, ``sweep.resume`` events on the ``repro.trace/v1``
stream -- are the deliberate exception: they record the interruption
history itself and are excluded from the parity guarantee (see
docs/robustness.md).
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
)
from concurrent.futures import (
    TimeoutError as FuturesTimeoutError,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.config import (
    DTMConfig,
    FailsafeConfig,
    MachineConfig,
    TelemetryConfig,
    ThermalConfig,
)
from repro.control.pid import AntiWindup
from repro.errors import ConfigError, SweepError
from repro.faults import FaultSchedule
from repro.sim.batch import (
    batch_compatibility_key,
    plan_batches,
    run_spec_lanes,
    validate_batch,
)
from repro.sim.checkpoint import (
    CheckpointJournal,
    fold_saved_telemetry,
    load_checkpoint,
    result_from_dict,
    spec_fingerprint,
)
from repro.sim.results import RunResult
from repro.sim.sweep import DEFAULT_INSTRUCTIONS, run_one
from repro.telemetry.core import Telemetry, ensure_telemetry, merge_telemetry
from repro.thermal.floorplan import Floorplan

#: Worker-local trace/event capacity: effectively "retain everything".
#: Workers must not decimate or drop, because the parent re-emits their
#: records onto the sink, whose own retention policy then applies --
#: decimating twice would diverge from the serial emit sequence.
_RETAIN_ALL = 1 << 30

#: Process-wide default for ``jobs=None`` (1 = classic serial sweep).
_DEFAULT_JOBS = 1

#: Process-wide default for ``batch=None`` (1 = no lane batching).
_DEFAULT_BATCH = 1

#: Process-wide default for ``options=None`` (None = classic fail-fast
#: sweep with no retries, timeouts, or checkpointing).
_DEFAULT_OPTIONS: "SweepOptions | None" = None

#: Process-wide default for ``cluster=None`` (None = run locally).
_DEFAULT_CLUSTER = None


def _validate_jobs(jobs, *, allow_none: bool = False) -> None:
    if jobs is None and allow_none:
        return
    # bool is an int subclass; set_default_jobs(True) used to slip
    # through and silently mean "one worker".
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 0:
        expected = "a non-negative int" + (" or None" if allow_none else "")
        raise ConfigError(f"jobs must be {expected}, got {jobs!r}")


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide default worker count (``0`` = all cores).

    Drivers wire their ``--jobs`` flag here so every ``run_suite`` /
    ``run_specs`` call that does not pass an explicit ``jobs`` fans out.
    """
    global _DEFAULT_JOBS
    _validate_jobs(jobs)
    _DEFAULT_JOBS = jobs


def get_default_jobs() -> int:
    """The process-wide default worker count (see :func:`set_default_jobs`)."""
    return _DEFAULT_JOBS


def resolve_jobs(jobs: int | None, tasks: int) -> int:
    """Effective worker count for ``tasks`` runs.

    ``None`` defers to the process-wide default; ``0`` means "all
    cores"; the result is clamped to ``[1, tasks]`` so a two-run sweep
    never spawns eight idle workers.
    """
    _validate_jobs(jobs, allow_none=True)
    # Same bool-is-an-int edge as jobs: resolve_jobs(2, True) used to
    # silently clamp every sweep to one worker.
    if isinstance(tasks, bool) or not isinstance(tasks, int):
        raise ConfigError(f"tasks must be an int, got {tasks!r}")
    if jobs is None:
        jobs = _DEFAULT_JOBS
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, max(1, tasks)))


def set_default_batch(batch: int) -> None:
    """Set the process-wide default lane-batch width (1 = no batching).

    Drivers wire their ``--batch`` flag here so every ``run_specs`` /
    ``run_outcomes`` call that does not pass an explicit ``batch``
    groups compatible specs into one vectorized
    :class:`~repro.sim.batch.BatchEngine` kernel (composing with
    process-level ``jobs`` inside each worker).
    """
    global _DEFAULT_BATCH
    validate_batch(batch)
    _DEFAULT_BATCH = batch


def get_default_batch() -> int:
    """The process-wide default batch width (see :func:`set_default_batch`)."""
    return _DEFAULT_BATCH


def resolve_batch(batch: int | None) -> int:
    """Effective lane-batch width (``None`` defers to the default)."""
    validate_batch(batch, allow_none=True)
    return _DEFAULT_BATCH if batch is None else batch


def set_default_sweep_options(options: "SweepOptions | None") -> None:
    """Set the process-wide default :class:`SweepOptions`.

    Drivers wire their ``--retries/--timeout/--checkpoint/--resume/
    --strict`` flags here so every ``run_suite`` / ``run_specs`` call
    that does not pass explicit ``options`` runs under the same
    fault-tolerance policy.  ``None`` restores the classic fail-fast
    behaviour.
    """
    global _DEFAULT_OPTIONS
    if options is not None and not isinstance(options, SweepOptions):
        raise ConfigError(
            f"options must be a SweepOptions or None, got {options!r}"
        )
    _DEFAULT_OPTIONS = options


def get_default_sweep_options() -> "SweepOptions | None":
    """The process-wide default sweep options (``None`` = classic)."""
    return _DEFAULT_OPTIONS


def set_default_cluster(cluster) -> None:
    """Set the process-wide default shard cluster (``None`` = local).

    Drivers wire their ``--cluster`` flag here so every ``run_suite`` /
    ``run_outcomes`` call that does not pass an explicit ``cluster``
    serves its specs to distributed workers (see
    :mod:`repro.sim.distributed`) instead of executing locally.
    """
    global _DEFAULT_CLUSTER
    if cluster is not None:
        # Function-level import: repro.sim.distributed builds on this
        # module, so a top-level import would be circular.
        from repro.sim.distributed.protocol import ClusterConfig

        if not isinstance(cluster, ClusterConfig):
            raise ConfigError(
                f"cluster must be a ClusterConfig or None, got {cluster!r}"
            )
    _DEFAULT_CLUSTER = cluster


def get_default_cluster():
    """The process-wide default shard cluster (``None`` = run locally)."""
    return _DEFAULT_CLUSTER


#: Process-wide default for ``cache=None``.  ``None`` defers to the
#: ``REPRO_CACHE`` environment variable (unset = no caching); ``False``
#: disables caching outright; a string is a validated directory path.
_DEFAULT_CACHE: str | bool | None = None


def set_default_cache(cache) -> None:
    """Set the process-wide default result-cache directory.

    Drivers wire their ``--cache`` / ``--no-cache`` flags here so every
    ``run_suite`` / ``run_specs`` call consults the cross-sweep result
    cache (:mod:`repro.sim.cache`).  Accepts a directory path
    (validated immediately, so a bad ``--cache`` fails at the command
    line rather than mid-sweep), ``False`` to disable caching even when
    ``REPRO_CACHE`` is set (``--no-cache``), or ``None`` to restore the
    environment-driven default.  A *path* is remembered, not an open
    store: each sweep opens its own
    :class:`~repro.sim.cache.ResultCache`, so no store file handle is
    ever shared across a pool fork.
    """
    global _DEFAULT_CACHE
    if cache is None or cache is False:
        _DEFAULT_CACHE = cache
        return
    # Function-level import: repro.sim.cache builds on the checkpoint
    # codec and is only needed when caching is actually requested.
    from repro.sim.cache import ResultCache, resolve_cache_dir

    if isinstance(cache, ResultCache):
        raise ConfigError(
            "set_default_cache takes a directory path, not an open "
            "ResultCache (open handles must not cross pool forks); "
            "pass cache=... per sweep for an explicit store"
        )
    _DEFAULT_CACHE = str(resolve_cache_dir(cache))


def get_default_cache() -> str | bool | None:
    """The process-wide default cache directory (see :func:`set_default_cache`)."""
    return _DEFAULT_CACHE


def resolve_cache(cache):
    """The effective :class:`~repro.sim.cache.ResultCache`, or ``None``.

    Precedence: explicit argument > process-wide default
    (:func:`set_default_cache`) > the ``REPRO_CACHE`` environment
    variable > no cache; ``False`` at any link stops the chain (that is
    what makes ``--no-cache`` meaningful under ``REPRO_CACHE``).  An
    already-open :class:`~repro.sim.cache.ResultCache` passes through
    untouched; a path opens a fresh store for this sweep.
    """
    if cache is None:
        cache = _DEFAULT_CACHE
    if cache is None:
        cache = os.environ.get("REPRO_CACHE") or None
    if cache is None or cache is False:
        return None
    from repro.sim.cache import ResultCache

    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic (jitter-free) backoff.

    ``delay(k)`` for the k-th retry (1-based) is
    ``backoff_seconds * backoff_multiplier**(k-1)``, capped at
    ``max_backoff_seconds``.  No randomness: two identical sweeps retry
    on an identical schedule, keeping fault-injection tests and resumed
    sweeps reproducible.  The default (``max_retries=0``) never
    retries; failures are still isolated per spec.
    """

    max_retries: int = 0
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 60.0

    def __post_init__(self) -> None:
        if (
            isinstance(self.max_retries, bool)
            or not isinstance(self.max_retries, int)
            or self.max_retries < 0
        ):
            raise ConfigError(
                f"max_retries must be a non-negative int, "
                f"got {self.max_retries!r}"
            )
        if self.backoff_seconds < 0:
            raise ConfigError("backoff_seconds must be >= 0")
        if self.backoff_multiplier < 1:
            raise ConfigError("backoff_multiplier must be >= 1")
        if self.max_backoff_seconds < 0:
            raise ConfigError("max_backoff_seconds must be >= 0")

    def delay(self, retry_number: int) -> float:
        """Backoff before the given retry (1-based), in seconds."""
        if retry_number < 1:
            raise ConfigError("retry_number is 1-based")
        if self.backoff_seconds <= 0:
            return 0.0
        return min(
            self.max_backoff_seconds,
            self.backoff_seconds
            * self.backoff_multiplier ** (retry_number - 1),
        )


@dataclass(frozen=True)
class SweepOptions:
    """Fault-tolerance configuration for one sweep.

    * ``retry`` -- per-spec retry budget and backoff schedule.
    * ``timeout_seconds`` -- per-spec wall clock, measured from the
      moment the spec starts on a worker.  Enforced only when running
      on a process pool (a hung worker is terminated and the pool
      rebuilt); in-process serial execution cannot preempt a hung
      spec, so ``jobs=1`` with a timeout runs on a one-worker pool.
    * ``checkpoint_path`` / ``resume`` -- the crash-safe journal (see
      :mod:`repro.sim.checkpoint`).  ``resume=True`` skips specs whose
      outcomes the journal already holds; without it an existing
      journal is replaced.
    * ``strict`` -- raise one aggregated
      :class:`~repro.errors.SweepError` after the sweep if any spec
      failed permanently.  The default isolates failures as
      ``SpecOutcome.error`` and keeps the completed results.
    * ``max_pool_rebuilds`` -- pool deaths (worker crash or timeout
      kill) tolerated before degrading to in-process serial execution
      for the remainder of the sweep -- the sweep-level analogue of
      the failsafe guard's open-loop fallback: keep producing results
      even when the fancy machinery is on fire.  Note the degraded
      mode cannot enforce timeouts and a worker crash becomes fatal.
    * ``window_factor`` -- bound on in-flight submissions
      (``window_factor * jobs``), so multi-thousand-spec matrices do
      not hold every pickled spec and pending result in memory.
    * ``batch`` -- lane-batch width (see :mod:`repro.sim.batch`):
      consecutive compatible specs run through one vectorized
      :class:`~repro.sim.batch.BatchEngine` kernel, inside each pool
      worker when ``jobs > 1``.  ``None`` defers to
      :func:`get_default_batch`.  A batched group's wall-clock timeout
      allowance is ``timeout_seconds`` *per lane*; a group that
      exceeds it is unattributable to one lane, so its lanes requeue
      uncharged as batching-exempt singletons.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    timeout_seconds: float | None = None
    checkpoint_path: str | Path | None = None
    resume: bool = False
    strict: bool = False
    max_pool_rebuilds: int = 3
    window_factor: int = 4
    batch: int | None = None

    def __post_init__(self) -> None:
        validate_batch(self.batch, allow_none=True)
        if self.timeout_seconds is not None and not (
            self.timeout_seconds > 0
        ):
            raise ConfigError(
                f"timeout_seconds must be positive or None, "
                f"got {self.timeout_seconds!r}"
            )
        if self.resume and self.checkpoint_path is None:
            raise ConfigError("resume=True requires a checkpoint_path")
        if (
            isinstance(self.max_pool_rebuilds, bool)
            or not isinstance(self.max_pool_rebuilds, int)
            or self.max_pool_rebuilds < 0
        ):
            raise ConfigError(
                f"max_pool_rebuilds must be a non-negative int, "
                f"got {self.max_pool_rebuilds!r}"
            )
        if (
            isinstance(self.window_factor, bool)
            or not isinstance(self.window_factor, int)
            or self.window_factor < 1
        ):
            raise ConfigError(
                f"window_factor must be a positive int, "
                f"got {self.window_factor!r}"
            )


@dataclass(frozen=True)
class SpecFailure:
    """The captured cause of one spec's permanent failure.

    ``kind`` is the failure channel: ``"error"`` (the spec raised),
    ``"timeout"`` (exceeded the per-spec wall clock), or ``"crash"``
    (the worker process died, e.g. ``BrokenProcessPool``).
    """

    kind: str
    exc_type: str
    message: str
    traceback: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.exc_type}: {self.message}"


@dataclass
class SpecOutcome:
    """One spec's structured sweep outcome: a result or a captured error."""

    spec: WorkSpec
    index: int
    result: RunResult | None = None
    error: SpecFailure | None = None
    #: Attempts actually executed (1 = first try succeeded).  Resumed
    #: outcomes report the journaled count.
    attempts: int = 1
    #: True when the outcome was loaded from the checkpoint journal
    #: instead of being re-run.
    from_checkpoint: bool = False
    #: True when the outcome was replayed from the cross-sweep result
    #: cache (:mod:`repro.sim.cache`) instead of being executed.
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        """Whether the spec produced a result."""
        return self.error is None


@dataclass(frozen=True)
class WorkSpec:
    """One self-contained simulation: everything a worker needs, by value.

    Only names and frozen config dataclasses -- never live policy,
    sensor, or engine objects -- so the spec pickles cheaply and the
    worker rebuilds the run through the exact same
    :func:`~repro.sim.sweep.run_one` factory path the serial sweep
    uses.
    """

    benchmark: str
    policy: str
    instructions: float = DEFAULT_INSTRUCTIONS
    seed: int = 0
    floorplan: Floorplan | None = None
    machine: MachineConfig | None = None
    thermal_config: ThermalConfig | None = None
    dtm_config: DTMConfig | None = None
    record_history: bool = False
    anti_windup: AntiWindup = AntiWindup.CONDITIONAL
    setpoint: float | None = None
    fault_schedule: FaultSchedule | None = None
    failsafe: FailsafeConfig | None = None
    #: Non-empty marks a *multicore* spec: per-core benchmark names run
    #: on a :class:`~repro.multicore.engine.MulticoreEngine` (tiled
    #: floorplan, ``policy`` shared by every core, optional
    #: ``coordinator``).  Multicore specs never lane-batch but ride the
    #: same orchestrated executor (jobs, retries, checkpointing).
    core_benchmarks: tuple[str, ...] = ()
    #: Coordinator name for multicore specs (e.g. ``"proportional"``).
    coordinator: str | None = None
    #: Extra identifying payload carried through to the caller (e.g. a
    #: per-driver label); not consumed by the executor itself.
    tag: tuple = field(default_factory=tuple)

    @property
    def key(self) -> tuple[str, str, int]:
        """The canonical (benchmark, policy, seed) matrix coordinate."""
        return (self.benchmark, self.policy, self.seed)


def matrix_specs(
    benchmarks: Iterable[str],
    policies: Iterable[str],
    seeds: Iterable[int] = (0,),
    include_baseline: bool = False,
    **common,
) -> list[WorkSpec]:
    """Specs for the full matrix in canonical benchmark-major order.

    The order (benchmark, then policy, then seed) matches the serial
    ``run_suite`` loop, so telemetry folded back in spec order
    reproduces the serial emit sequence.  ``common`` keyword arguments
    (``instructions``, configs, ...) are applied to every spec.
    """
    chosen_policies = list(policies)
    if include_baseline and "none" not in chosen_policies:
        chosen_policies.insert(0, "none")
    return [
        WorkSpec(benchmark=benchmark, policy=policy, seed=seed, **common)
        for benchmark in benchmarks
        for policy in chosen_policies
        for seed in seeds
    ]


def _worker_telemetry_config(
    sink_config: TelemetryConfig | None,
) -> TelemetryConfig:
    """Retain-everything local telemetry for one worker run.

    Profiling is off (spans are per-process and never merged); the
    sample-latency switch is inherited from the sink so the latency
    histogram sees the same number of observations as a serial sweep.
    """
    sample_latency = (
        sink_config.sample_latency if sink_config is not None else True
    )
    return TelemetryConfig(
        trace_capacity=_RETAIN_ALL,
        trace_mode="decimate",
        event_capacity=_RETAIN_ALL,
        profile=False,
        sample_latency=sample_latency,
    )


def _execute_multicore(spec: WorkSpec, telemetry):
    """Run one multicore spec on a :class:`MulticoreEngine`."""
    # Function-level import: repro.multicore builds on repro.sim.
    from repro.multicore.engine import MulticoreEngine

    for name, value, default in (
        ("floorplan", spec.floorplan, None),
        ("fault_schedule", spec.fault_schedule, None),
        ("setpoint", spec.setpoint, None),
        ("record_history", spec.record_history, False),
        ("anti_windup", spec.anti_windup, AntiWindup.CONDITIONAL),
    ):
        if value != default:
            raise ConfigError(
                f"multicore specs do not support {name}={value!r}"
            )
    engine = MulticoreEngine(
        list(spec.core_benchmarks),
        policy=spec.policy,
        coordinator=spec.coordinator,
        machine=spec.machine,
        thermal_config=spec.thermal_config,
        dtm_config=spec.dtm_config,
        seed=spec.seed,
        failsafe=spec.failsafe,
        telemetry=telemetry,
    )
    return engine.run(instructions=spec.instructions)


def _execute(spec: WorkSpec, telemetry) -> RunResult:
    """Run one spec in-process against the given telemetry sink."""
    if spec.core_benchmarks:
        return _execute_multicore(spec, telemetry)
    return run_one(
        spec.benchmark,
        spec.policy,
        instructions=spec.instructions,
        floorplan=spec.floorplan,
        machine=spec.machine,
        thermal_config=spec.thermal_config,
        dtm_config=spec.dtm_config,
        seed=spec.seed,
        record_history=spec.record_history,
        anti_windup=spec.anti_windup,
        setpoint=spec.setpoint,
        fault_schedule=spec.fault_schedule,
        failsafe=spec.failsafe,
        telemetry=telemetry,
    )


def _run_spec(
    spec: WorkSpec, telemetry_config: TelemetryConfig | None
) -> tuple[RunResult, Telemetry | None]:
    """Worker entry point: run one spec with optional local telemetry.

    Module-level (picklable by reference).  Returns the result plus the
    worker's whole local :class:`Telemetry` -- plain dataclass/list
    state, so it pickles -- for the parent to fold into the sink.
    """
    local = (
        Telemetry(telemetry_config) if telemetry_config is not None else None
    )
    result = _execute(spec, local)
    return result, local


def _group_locals(
    count: int, telemetry_config: TelemetryConfig | None
) -> list[Telemetry | None]:
    """Per-lane retain-everything sinks for one batched group."""
    return [
        Telemetry(telemetry_config) if telemetry_config is not None else None
        for _ in range(count)
    ]


def _run_group_payloads(
    specs: Sequence[WorkSpec], telemetry_config: TelemetryConfig | None
) -> list[tuple]:
    """Worker entry point: run compatible specs as one batched kernel.

    Returns one payload per lane, in lane order: ``("ok", result,
    local_telemetry)`` or ``("error", exc_type, message, traceback)``.
    Lane failures are settled *here* (strings, not exception objects)
    so one lane's unpicklable exception cannot poison the whole
    group's result transfer.
    """
    locals_ = _group_locals(len(specs), telemetry_config)
    payloads: list[tuple] = []
    for outcome, local in zip(run_spec_lanes(specs, locals_), locals_):
        if outcome.error is None:
            payloads.append(("ok", outcome.result, local))
        else:
            error = outcome.error
            payloads.append((
                "error",
                type(error).__name__,
                str(error),
                "".join(traceback_module.format_exception(error)),
            ))
    return payloads


def _run_spec_group(
    specs: Sequence[WorkSpec], telemetry_config: TelemetryConfig | None
) -> list[tuple[RunResult, Telemetry | None]]:
    """Fail-fast group worker: all lane results, or the earliest error.

    The batched analogue of :func:`_run_spec` for the classic
    (orchestrator-less) pool path: raising the earliest lane's error
    reproduces the serial loop's observable fail-fast behaviour (later
    lanes did execute, but their results are discarded with the
    raise).
    """
    locals_ = _group_locals(len(specs), telemetry_config)
    outcomes = run_spec_lanes(specs, locals_)
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
    return [
        (outcome.result, local)
        for outcome, local in zip(outcomes, locals_)
    ]


def execute_payloads(
    specs: Sequence[WorkSpec],
    jobs: int | None = None,
    batch: int | None = None,
    telemetry_config: TelemetryConfig | None = None,
) -> list[tuple]:
    """Run specs locally; one settled payload per spec, in spec order.

    The shard worker's execution entry point
    (:mod:`repro.sim.distributed.worker`), composing process-level
    ``jobs`` and lane-level ``batch`` exactly like a local sweep, but
    returning per-spec payload tuples instead of folding telemetry into
    a sink: ``("ok", result, local_telemetry)`` for successes,
    ``("error", exc_type, message, traceback)`` for failures -- the
    same settled shape :func:`_run_group_payloads` produces, so one
    lane's failure never poisons its neighbours.  Retry/backoff policy
    stays with the coordinator; this function reports one attempt.

    A local pool death (``BrokenExecutor``) degrades the unsettled
    remainder to in-process serial execution -- results are pure
    functions of their specs, so the fallback changes timing, never
    bits.
    """
    specs = list(specs)
    if not specs:
        return []
    jobs = resolve_jobs(jobs, len(specs))
    batch = resolve_batch(batch)
    groups = (
        plan_batches(specs, batch)
        if batch > 1
        else [[index] for index in range(len(specs))]
    )
    payloads: list[tuple | None] = [None] * len(specs)

    def run_group_inline(group: list[int]) -> list[tuple]:
        group_specs = [specs[i] for i in group]
        if len(group) == 1:
            try:
                result, local = _run_spec(group_specs[0], telemetry_config)
            except Exception as error:
                return [(
                    "error",
                    type(error).__name__,
                    str(error),
                    traceback_module.format_exc(),
                )]
            return [("ok", result, local)]
        return _run_group_payloads(group_specs, telemetry_config)

    def settle(group: list[int], group_payloads: list[tuple]) -> None:
        for index, payload in zip(group, group_payloads):
            payloads[index] = payload

    if jobs <= 1:
        for group in groups:
            settle(group, run_group_inline(group))
        return payloads
    window = _submission_window(jobs)
    unsettled: list[list[int]] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        pending: deque = deque()
        submitted = 0
        settled = 0
        try:
            while settled < len(groups):
                while submitted < len(groups) and len(pending) < window:
                    group = groups[submitted]
                    group_specs = [specs[i] for i in group]
                    if len(group) == 1:
                        future = pool.submit(
                            _run_spec, group_specs[0], telemetry_config
                        )
                    else:
                        future = pool.submit(
                            _run_group_payloads,
                            group_specs,
                            telemetry_config,
                        )
                    pending.append((group, future))
                    submitted += 1
                group, future = pending.popleft()
                settled += 1
                try:
                    payload = future.result()
                except BrokenExecutor:
                    # The pool died; blame is unattributable here (the
                    # coordinator's concern is one attempt's outcome),
                    # so finish everything unsettled in-process.
                    unsettled.append(group)
                    unsettled.extend(g for g, _ in pending)
                    unsettled.extend(groups[submitted:])
                    pool.shutdown(wait=False, cancel_futures=True)
                    break
                except Exception as error:
                    if len(group) == 1:
                        settle(
                            group,
                            [(
                                "error",
                                type(error).__name__,
                                str(error),
                                "".join(
                                    traceback_module.format_exception(error)
                                ),
                            )],
                        )
                    else:
                        # Group workers settle per-lane failures into
                        # payloads, so a group-level raise is
                        # infrastructure, not one lane's fault: re-run
                        # each lane in-process for exact attribution.
                        for lane in group:
                            settle([lane], run_group_inline([lane]))
                else:
                    if len(group) == 1:
                        result, local = payload
                        settle(group, [("ok", result, local)])
                    else:
                        settle(group, payload)
        except KeyboardInterrupt:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    for group in unsettled:
        settle(group, run_group_inline(group))
    return payloads


def _submission_window(jobs: int, window_factor: int = 4) -> int:
    """In-flight submission bound: keep workers fed, memory bounded.

    Submitting all N futures up front holds every pickled spec and
    every pending pickled result in memory at once; a window of
    ``window_factor * jobs`` keeps the pool saturated (workers never
    wait on the collector) while bounding both.
    """
    return max(1, window_factor) * max(1, jobs)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly tear down a pool whose workers may be hung.

    ``shutdown`` alone waits for running work -- useless against a hung
    or wedged worker -- so terminate the worker processes first.  Uses
    the executor's private process table; guarded so a stdlib layout
    change degrades to a plain (blocking-free) shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - platform-specific
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def run_specs(
    specs: Sequence[WorkSpec],
    jobs: int | None = None,
    telemetry=None,
    options: "SweepOptions | None" = None,
    batch: int | None = None,
    cluster=None,
    cache=None,
) -> list[RunResult]:
    """Execute specs, serially or on a process pool; results in spec order.

    ``jobs <= 1`` runs the classic serial loop sharing ``telemetry``
    directly (identical in every observable way to the pre-executor
    sweeps, including profiler span counts).  ``jobs > 1`` fans out
    over worker processes (submissions bounded by a sliding window) and
    folds each worker's retain-everything local telemetry back into the
    sink in spec order, so retained traces, events, and merged metrics
    match the serial run exactly (spans excepted; see the module
    docstring).

    ``options`` (or a process-wide default installed via
    :func:`set_default_sweep_options`) routes execution through the
    fault-tolerant orchestrator :func:`run_outcomes`: failing specs
    yield ``None`` entries in the returned list (or, with
    ``options.strict``, one aggregated
    :class:`~repro.errors.SweepError` at the end).  With no options
    anywhere, behaviour is the classic fail-fast sweep, bit-identical
    to the pre-orchestrator code.

    ``batch`` (``None`` defers to :func:`get_default_batch`) groups
    consecutive compatible specs into one vectorized
    :class:`~repro.sim.batch.BatchEngine` kernel per group -- inside
    each pool worker when ``jobs > 1``, so process- and lane-level
    parallelism compose.  Results stay bit-identical to the unbatched
    sweep; telemetry follows the parallel parity model (per-lane local
    sinks folded in spec order) even at ``jobs=1``, because lanes run
    interleaved.

    ``cache`` (``None`` defers to :func:`resolve_cache`) consults the
    cross-sweep result cache before executing anything: hits replay
    their stored result and telemetry bit-identically, only misses run
    (and write their outcome back).  ``cache.*`` orchestration events
    are excluded from the parity guarantee, like ``sweep.*``.
    """
    specs = list(specs)
    if options is None:
        options = _DEFAULT_OPTIONS
    if cluster is None:
        cluster = _DEFAULT_CLUSTER
    if options is not None or cluster is not None:
        outcomes = run_outcomes(
            specs, jobs=jobs, telemetry=telemetry, options=options,
            batch=batch, cluster=cluster, cache=cache,
        )
        return [outcome.result for outcome in outcomes]
    sink = ensure_telemetry(telemetry)
    jobs = resolve_jobs(jobs, len(specs))
    batch = resolve_batch(batch)
    store = resolve_cache(cache)
    if store is not None:
        return _run_specs_cached(specs, jobs, sink, batch, store)
    if batch > 1:
        return _run_specs_batched(specs, jobs, sink, batch)
    if jobs <= 1:
        shared = sink if sink.enabled else None
        return [_execute(spec, shared) for spec in specs]
    config = (
        _worker_telemetry_config(getattr(sink, "config", None))
        if sink.enabled
        else None
    )
    results: list[RunResult] = []
    window = _submission_window(jobs)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        try:
            pending: deque = deque()
            submitted = 0
            # Submit in a sliding window and collect in SUBMISSION
            # order, not completion order: result ordering and
            # telemetry fold order must match the serial loop, and the
            # window bounds pickled-spec/result memory on huge
            # matrices.
            while len(results) < len(specs):
                while submitted < len(specs) and len(pending) < window:
                    pending.append(
                        pool.submit(_run_spec, specs[submitted], config)
                    )
                    submitted += 1
                result, local = pending.popleft().result()
                results.append(result)
                if local is not None:
                    merge_telemetry(sink, local)
        except KeyboardInterrupt:
            # Telemetry for collected results is already folded (the
            # loop folds as it collects); drop queued specs so Ctrl-C
            # does not hang waiting on them.  Workers already running
            # finish their current spec during context exit.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    if sink.enabled and specs:
        # A serial sweep leaves the sink contextualized on its last
        # run; match that so downstream snapshot headers agree.
        last = specs[-1]
        sink.set_context(last.benchmark, last.policy)
    return results


def _run_specs_batched(
    specs: list[WorkSpec], jobs: int, sink, batch: int
) -> list[RunResult]:
    """Classic fail-fast execution with lane batching.

    Groups are planned once (:func:`~repro.sim.batch.plan_batches`)
    and run in spec order -- in-process for ``jobs <= 1``, else one
    group per pool task with the usual sliding window.  Singleton
    groups (incompatible neighbours, multicore specs) run through the
    ordinary :func:`_execute` path.  Telemetry uses per-lane local
    sinks folded in spec order even in-process: lanes of one group run
    interleaved, so sharing the sink directly would scramble the emit
    sequence.
    """
    groups = plan_batches(specs, batch)
    config = (
        _worker_telemetry_config(getattr(sink, "config", None))
        if sink.enabled
        else None
    )
    results: list[RunResult] = [None] * len(specs)  # type: ignore[list-item]

    def settle(group, pairs) -> None:
        for index, (result, local) in zip(group, pairs):
            results[index] = result
            if local is not None:
                merge_telemetry(sink, local)

    if jobs <= 1:
        for group in groups:
            group_specs = [specs[i] for i in group]
            if len(group) == 1:
                local = Telemetry(config) if config is not None else None
                settle(group, [(_execute(group_specs[0], local), local)])
            else:
                settle(group, _run_spec_group(group_specs, config))
    else:
        window = _submission_window(jobs)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            try:
                pending: deque = deque()
                submitted = 0
                settled = 0
                while settled < len(groups):
                    while (
                        submitted < len(groups) and len(pending) < window
                    ):
                        group = groups[submitted]
                        group_specs = [specs[i] for i in group]
                        if len(group) == 1:
                            future = pool.submit(
                                _run_spec, group_specs[0], config
                            )
                        else:
                            future = pool.submit(
                                _run_spec_group, group_specs, config
                            )
                        pending.append((group, future))
                        submitted += 1
                    group, future = pending.popleft()
                    payload = future.result()
                    if len(group) == 1:
                        payload = [payload]
                    settle(group, payload)
                    settled += 1
            except KeyboardInterrupt:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
    if sink.enabled and specs:
        last = specs[-1]
        sink.set_context(last.benchmark, last.policy)
    return results


def _run_specs_cached(
    specs: list[WorkSpec], jobs: int, sink, batch: int, store
) -> list[RunResult]:
    """Classic fail-fast execution through the cross-sweep result cache.

    Hits replay their stored result without executing anything (and
    without occupying a pool slot or a batch lane); only the misses
    run -- through the usual jobs/batch machinery -- and write their
    outcome back on completion.  Telemetry folds in spec order,
    interleaving replayed payloads (:func:`fold_saved_telemetry`) with
    fresh worker-local sinks (:func:`merge_telemetry`), which is what
    makes a warm sweep's retained traces, events, and metrics
    bit-identical to a cold one's.  Misses use worker-local telemetry
    even at ``jobs=1`` -- the same documented deviation as lane
    batching (no per-run profiler spans on the sink).  A ``cache.hit``
    summary event reports the hit/miss split; ``cache.*`` events are
    excluded from parity like ``sweep.*``.
    """
    from repro.sim.cache import cache_key

    keys = [cache_key(spec) for spec in specs]
    # An entry without telemetry cannot replay what this sink needs to
    # fold, so it misses (and upgrades in place when the re-run stores).
    need_telemetry = sink.enabled
    entries = [
        store.lookup(key, need_telemetry=need_telemetry) for key in keys
    ]
    hit_set = {i for i, entry in enumerate(entries) if entry is not None}
    config = (
        _worker_telemetry_config(getattr(sink, "config", None))
        if sink.enabled
        else None
    )
    try:
        groups = (
            plan_batches(specs, batch, skip=hit_set)
            if batch > 1
            else [[i] for i in range(len(specs)) if i not in hit_set]
        )
        pairs = _run_spec_pairs(specs, groups, jobs, config)
        results: list[RunResult] = [None] * len(specs)  # type: ignore[list-item]
        for index in sorted(pairs):
            result, local = pairs[index]
            store.store(
                keys[index], specs[index], result, local
            )
        for index, spec in enumerate(specs):
            entry = entries[index]
            if entry is None:
                result, local = pairs[index]
                results[index] = result
                if local is not None:
                    merge_telemetry(sink, local)
            else:
                results[index] = result_from_dict(entry["result"])
                if sink.enabled:
                    fold_saved_telemetry(sink, entry.get("telemetry"))
        if sink.enabled and specs:
            sink.event(
                "cache.hit",
                -1,
                f"result cache replayed {len(hit_set)} of {len(specs)} "
                f"specs ({len(specs) - len(hit_set)} executed)",
                hits=len(hit_set),
                misses=len(specs) - len(hit_set),
                total=len(specs),
                path=str(store.directory),
            )
            last = specs[-1]
            sink.set_context(last.benchmark, last.policy)
    finally:
        # Persist LRU touches and counters even when a miss fails
        # fast -- the hits that happened before the raise are real.
        store.flush()
    return results


def _run_spec_pairs(
    specs: list[WorkSpec],
    groups: list[list[int]],
    jobs: int,
    config: TelemetryConfig | None,
) -> dict[int, tuple[RunResult, "Telemetry | None"]]:
    """Fail-fast execution of planned groups; pairs keyed by spec index.

    The cached sweep's miss runner: the same serial/pool/batched
    machinery as :func:`run_specs`'s classic paths, but returning each
    run's ``(result, worker-local telemetry)`` instead of folding into
    a sink, so the caller can interleave fresh and replayed telemetry
    in spec order.  ``groups`` is a batch plan over the *full* spec
    list (cached lanes already dropped); indices key the result dict.
    """
    pairs: dict[int, tuple] = {}
    if not groups:
        return pairs
    jobs = resolve_jobs(jobs, sum(len(group) for group in groups))

    def settle(group: list[int], group_pairs) -> None:
        for index, pair in zip(group, group_pairs):
            pairs[index] = pair

    if jobs <= 1:
        for group in groups:
            group_specs = [specs[i] for i in group]
            if len(group) == 1:
                settle(group, [_run_spec(group_specs[0], config)])
            else:
                settle(group, _run_spec_group(group_specs, config))
        return pairs
    window = _submission_window(jobs)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        try:
            pending: deque = deque()
            submitted = 0
            settled = 0
            while settled < len(groups):
                while submitted < len(groups) and len(pending) < window:
                    group = groups[submitted]
                    group_specs = [specs[i] for i in group]
                    if len(group) == 1:
                        future = pool.submit(
                            _run_spec, group_specs[0], config
                        )
                    else:
                        future = pool.submit(
                            _run_spec_group, group_specs, config
                        )
                    pending.append((group, future))
                    submitted += 1
                group, future = pending.popleft()
                payload = future.result()
                if len(group) == 1:
                    payload = [payload]
                settle(group, payload)
                settled += 1
        except KeyboardInterrupt:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    return pairs


def run_outcomes(
    specs: Sequence[WorkSpec],
    jobs: int | None = None,
    telemetry=None,
    options: "SweepOptions | None" = None,
    batch: int | None = None,
    cluster=None,
    cache=None,
) -> list[SpecOutcome]:
    """Fault-tolerantly execute specs; structured outcomes in spec order.

    The resilient counterpart of :func:`run_specs`: every spec yields a
    :class:`SpecOutcome` -- a result, or a :class:`SpecFailure`
    capturing the exception/traceback, timeout, or worker crash that
    exhausted its retry budget -- and one spec's failure never aborts
    the rest of the sweep.  See :class:`SweepOptions` for the retry,
    timeout, checkpoint/resume, and strict-mode knobs, and the module
    docstring for the determinism guarantees.

    ``cluster`` (or a default installed via
    :func:`set_default_cluster`) serves the specs to distributed
    workers through a :class:`~repro.sim.distributed.ShardCoordinator`
    instead of executing locally; ``jobs`` and ``batch`` then apply on
    each *worker's* command line, not here.  Outcomes, telemetry, and
    checkpoint behaviour are bit-identical either way.

    ``cache`` (``None`` defers to :func:`resolve_cache`) replays
    previously completed specs from the cross-sweep result cache
    before any execution or leasing happens (``from_cache=True`` on
    their outcomes); fresh successes write back.
    """
    specs = list(specs)
    if options is None:
        options = _DEFAULT_OPTIONS if _DEFAULT_OPTIONS is not None else SweepOptions()
    sink = ensure_telemetry(telemetry)
    if cluster is None:
        cluster = _DEFAULT_CLUSTER
    if cluster is not None:
        # Function-level import: repro.sim.distributed builds on this
        # module.  The coordinator applies the same strict-mode
        # aggregation itself, so return its outcomes directly.
        from repro.sim.distributed.coordinator import run_cluster_outcomes

        return run_cluster_outcomes(
            specs, cluster, options=options, telemetry=sink, cache=cache
        )
    jobs = resolve_jobs(jobs, len(specs))
    # Explicit argument > options.batch > process-wide default.
    if batch is None:
        batch = options.batch
    batch = resolve_batch(batch)
    runner = _OutcomeRunner(specs, jobs, sink, options, batch, cache=cache)
    try:
        outcomes = runner.run()
    except KeyboardInterrupt:
        # Keep what we have: fold completed runs' telemetry (in spec
        # order) so the sink -- and the journal, already fsync'd per
        # outcome -- reflect every finished spec before propagating.
        runner.fold_telemetry()
        raise
    finally:
        runner.close()
    runner.fold_telemetry()
    failures = [o for o in outcomes if o.error is not None]
    if failures and options.strict:
        detail = "; ".join(
            f"{o.spec.benchmark}/{o.spec.policy}[seed={o.spec.seed}] "
            f"{o.error}"
            for o in failures[:5]
        )
        if len(failures) > 5:
            detail += f"; ... {len(failures) - 5} more"
        raise SweepError(
            f"{len(failures)} of {len(specs)} specs failed permanently: "
            f"{detail}",
            failures,
        )
    return outcomes


class _OutcomeRunner:
    """One fault-tolerant sweep execution: state + the retry/rebuild loop."""

    def __init__(
        self,
        specs: list[WorkSpec],
        jobs: int,
        sink,
        options: SweepOptions,
        batch: int = 1,
        cache=None,
    ) -> None:
        self.specs = specs
        self.jobs = jobs
        self.sink = sink
        self.options = options
        self.batch = batch
        #: The cross-sweep result cache, or None (see resolve_cache).
        self.cache = resolve_cache(cache)
        #: Per-spec cache keys, computed only when the cache is on.
        self._cache_keys: list[str | None] = [None] * len(specs)
        #: Per-spec lane-compatibility keys (None = never batch).
        self._batch_keys = (
            [batch_compatibility_key(spec) for spec in specs]
            if batch > 1
            else None
        )
        #: Specs banned from batching: after an unattributable group
        #: failure (timeout, group-level error) its lanes re-run as
        #: singletons so blame is attributable on the next attempt.
        self._no_batch: set[int] = set()
        self.config = (
            _worker_telemetry_config(getattr(sink, "config", None))
            if sink.enabled
            else None
        )
        n = len(specs)
        self.outcomes: list[SpecOutcome | None] = [None] * n
        #: Worker-local telemetry of live successful runs, by index.
        self._locals: list[Telemetry | None] = [None] * n
        #: Journaled telemetry payloads of resumed outcomes, by index.
        self._saved_payloads: list[dict | None] = [None] * n
        self._journal: CheckpointJournal | None = None
        self._fingerprints: list[str | None] = [None] * n
        self._folded = False

    # -- checkpoint and cache plumbing ---------------------------------------
    def _open_journal(self) -> deque:
        """Resolve resumed and cached specs; queue of (index, attempt).

        Checkpoint resume wins over the cache (both replay the same
        codec payloads, but the journal is this sweep's own authority);
        a resumed entry also warms the cache, so a later sweep without
        the journal still hits.  Cache hits are pre-settled here
        exactly like resumed outcomes -- and journaled, so a
        ``--resume`` of an interrupted warm sweep works -- which is
        what keeps them out of every execution path (no pool slot, no
        batch lane, no shard lease).
        """
        options = self.options
        queue: deque = deque()
        saved: dict[str, list[dict]] = {}
        if options.checkpoint_path is not None:
            self._fingerprints = [
                spec_fingerprint(spec) for spec in self.specs
            ]
            if options.resume:
                saved = load_checkpoint(options.checkpoint_path)
            self._journal = CheckpointJournal.open(
                options.checkpoint_path, resume=options.resume
            )
        if self.cache is not None:
            from repro.sim.cache import cache_key

            self._cache_keys = [cache_key(spec) for spec in self.specs]
        resumed = 0
        cached = 0
        for index, spec in enumerate(self.specs):
            entries = saved.get(self._fingerprints[index] or "")
            if entries:
                entry = entries.pop(0)
                self.outcomes[index] = SpecOutcome(
                    spec=spec,
                    index=index,
                    result=result_from_dict(entry["result"]),
                    attempts=entry.get("attempts", 1),
                    from_checkpoint=True,
                )
                self._saved_payloads[index] = entry.get("telemetry")
                resumed += 1
                if self.cache is not None:
                    self.cache.store_payload(
                        self._cache_keys[index],
                        spec,
                        entry["result"],
                        entry.get("telemetry"),
                        attempts=entry.get("attempts", 1),
                        fingerprint=self._fingerprints[index],
                    )
                continue
            if self.cache is not None:
                entry = self.cache.lookup(
                    self._cache_keys[index],
                    need_telemetry=self.sink.enabled,
                )
                if entry is not None:
                    self.outcomes[index] = SpecOutcome(
                        spec=spec,
                        index=index,
                        result=result_from_dict(entry["result"]),
                        attempts=entry.get("attempts", 1),
                        from_cache=True,
                    )
                    self._saved_payloads[index] = entry.get("telemetry")
                    cached += 1
                    if self._journal is not None:
                        self._journal.append_payload(
                            self._fingerprints[index],
                            spec,
                            entry.get("attempts", 1),
                            entry["result"],
                            entry.get("telemetry"),
                        )
                    continue
            queue.append((index, 0))
        if resumed and self.sink.enabled:
            self.sink.event(
                "sweep.resume",
                -1,
                f"resumed {resumed} of {len(self.specs)} specs "
                f"from checkpoint",
                resumed=resumed,
                total=len(self.specs),
                path=str(options.checkpoint_path),
            )
        if cached and self.sink.enabled:
            self.sink.event(
                "cache.hit",
                -1,
                f"result cache replayed {cached} of {len(self.specs)} "
                f"specs",
                hits=cached,
                total=len(self.specs),
                path=str(self.cache.directory),
            )
        return queue

    def close(self) -> None:
        """Close the journal; flush cache bookkeeping (idempotent)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self.cache is not None:
            self.cache.flush()

    # -- outcome bookkeeping -------------------------------------------------
    def _finish_success(
        self, index: int, attempt: int, result: RunResult, local
    ) -> None:
        self.outcomes[index] = SpecOutcome(
            spec=self.specs[index],
            index=index,
            result=result,
            attempts=attempt + 1,
        )
        self._locals[index] = local
        if self._journal is not None:
            self._journal.append_outcome(
                self._fingerprints[index],
                self.specs[index],
                attempt + 1,
                result,
                local,
            )
        if self.cache is not None:
            self.cache.store(
                self._cache_keys[index],
                self.specs[index],
                result,
                local,
                attempts=attempt + 1,
            )

    def _register_failure(
        self,
        index: int,
        attempt: int,
        kind: str,
        exc_type: str,
        message: str,
        traceback: str = "",
    ) -> bool:
        """Handle one failed attempt; True if the spec should retry."""
        spec = self.specs[index]
        retry = self.options.retry
        if attempt < retry.max_retries:
            if self.sink.enabled:
                self.sink.event(
                    "sweep.retry",
                    index,
                    f"{spec.benchmark}/{spec.policy} attempt "
                    f"{attempt + 1} failed ({kind}); retrying",
                    failure_kind=kind,
                    attempt=attempt + 1,
                    exc_type=exc_type,
                )
            delay = retry.delay(attempt + 1)
            if delay > 0:
                time.sleep(delay)
            return True
        self.outcomes[index] = SpecOutcome(
            spec=spec,
            index=index,
            error=SpecFailure(
                kind=kind,
                exc_type=exc_type,
                message=message,
                traceback=traceback,
            ),
            attempts=attempt + 1,
        )
        if self.sink.enabled:
            self.sink.event(
                "sweep.spec_failed",
                index,
                f"{spec.benchmark}/{spec.policy} failed permanently "
                f"after {attempt + 1} attempt(s) ({kind})",
                failure_kind=kind,
                attempts=attempt + 1,
                exc_type=exc_type,
            )
        return False

    # -- execution -----------------------------------------------------------
    def run(self) -> list[SpecOutcome]:
        queue = self._open_journal()
        if queue:
            # Timeouts are only enforceable on a pool (a hung in-process
            # spec cannot be preempted), so jobs=1 with a timeout runs
            # on a one-worker pool; plain jobs=1 stays in-process.
            if self.jobs <= 1 and self.options.timeout_seconds is None:
                self._run_serial(queue)
            else:
                self._run_pool(queue)
        return [outcome for outcome in self.outcomes]  # all filled now

    def _next_group(self, queue: deque) -> list[tuple[int, int]]:
        """Pop the leading lane group: compatible consecutive specs.

        Mirrors :func:`~repro.sim.batch.plan_batches` but operates on
        the live retry queue, so requeued attempts regroup with
        whatever compatible work is adjacent *now*.  Specs in
        ``_no_batch`` (or with a ``None`` key: multicore) stay
        singletons.
        """
        index, attempt = queue.popleft()
        lanes = [(index, attempt)]
        if self.batch <= 1 or index in self._no_batch:
            return lanes
        key = self._batch_keys[index]
        if key is None:
            return lanes
        while queue and len(lanes) < self.batch:
            next_index, _ = queue[0]
            if (
                next_index in self._no_batch
                or self._batch_keys[next_index] != key
            ):
                break
            lanes.append(queue.popleft())
        return lanes

    def _settle_lane_payload(
        self, index: int, attempt: int, payload: tuple, queue: deque
    ) -> None:
        """Apply one lane's worker payload (success or captured error)."""
        if payload[0] == "ok":
            _, result, local = payload
            self._finish_success(index, attempt, result, local)
        else:
            _, exc_type, message, tb = payload
            if self._register_failure(
                index, attempt, "error", exc_type, message, tb
            ):
                queue.append((index, attempt + 1))

    def _run_serial(self, queue: deque) -> None:
        """In-process execution: isolation + retries, no preemption."""
        while queue:
            lanes = self._next_group(queue)
            if len(lanes) > 1:
                locals_ = _group_locals(len(lanes), self.config)
                outcomes = run_spec_lanes(
                    [self.specs[i] for i, _ in lanes], locals_
                )
                for (index, attempt), outcome, local in zip(
                    lanes, outcomes, locals_
                ):
                    if outcome.error is None:
                        self._finish_success(
                            index, attempt, outcome.result, local
                        )
                    elif self._register_failure(
                        index,
                        attempt,
                        "error",
                        type(outcome.error).__name__,
                        str(outcome.error),
                        "".join(
                            traceback_module.format_exception(outcome.error)
                        ),
                    ):
                        queue.append((index, attempt + 1))
                continue
            index, attempt = lanes[0]
            try:
                result, local = _run_spec(self.specs[index], self.config)
            except Exception as error:
                if self._register_failure(
                    index,
                    attempt,
                    "error",
                    type(error).__name__,
                    str(error),
                    traceback_module.format_exc(),
                ):
                    queue.append((index, attempt + 1))
            else:
                self._finish_success(index, attempt, result, local)

    def _harvest_in_flight(self, in_flight: deque) -> list[tuple[int, int]]:
        """After a pool death: settle finished futures, list the lost.

        Futures that completed before the pool died still hold their
        results (or their spec's own exception, handled normally);
        everything else -- running or queued -- was lost with the
        workers and must re-run.
        """
        survivors: list[tuple[int, int]] = []
        while in_flight:
            lanes, future, _deadline, _is_solo = in_flight.popleft()
            if not future.done() or future.cancelled():
                survivors.extend(lanes)
                continue
            error = future.exception()
            if error is None:
                payload = future.result()
                if len(lanes) == 1:
                    index, attempt = lanes[0]
                    result, local = payload
                    self._finish_success(index, attempt, result, local)
                else:
                    retries: deque = deque()
                    for (index, attempt), item in zip(lanes, payload):
                        self._settle_lane_payload(
                            index, attempt, item, retries
                        )
                    survivors.extend(retries)
            elif isinstance(error, BrokenExecutor):
                survivors.extend(lanes)
            elif len(lanes) == 1:
                # The spec raised normally just before the pool died:
                # attributable, so charge it like any worker error.
                index, attempt = lanes[0]
                if self._register_failure(
                    index,
                    attempt,
                    "error",
                    type(error).__name__,
                    str(error),
                    "".join(traceback_module.format_exception(error)),
                ):
                    survivors.append((index, attempt + 1))
            else:
                # A batched group raised at group level (not one
                # lane's captured failure): unattributable, so the
                # lanes requeue uncharged as batching-exempt
                # singletons and blame lands on the next attempt.
                self._no_batch.update(i for i, _ in lanes)
                survivors.extend(lanes)
        return survivors

    def _handle_timeout(self, index: int, attempt: int) -> bool:
        """Record one timed-out attempt; True if the spec retries."""
        spec = self.specs[index]
        timeout = self.options.timeout_seconds
        if self.sink.enabled:
            self.sink.event(
                "sweep.timeout",
                index,
                f"{spec.benchmark}/{spec.policy} exceeded {timeout}s; "
                f"terminating its worker",
                timeout_seconds=timeout,
                attempt=attempt + 1,
            )
        return self._register_failure(
            index,
            attempt,
            "timeout",
            "TimeoutError",
            f"spec exceeded the {timeout}s wall-clock timeout",
        )

    def _run_pool(self, queue: deque) -> None:
        """Pool execution: timeouts, crash recovery, sliding window.

        Two failure channels need pool surgery, with different blame
        semantics:

        * **Timeout** -- exactly attributable (each future has its own
          deadline), so the hung spec is charged, its worker is
          terminated, innocents requeue uncharged, and the pool is
          rebuilt.
        * **Worker crash** (``BrokenProcessPool``) -- *not*
          attributable: a dying worker fails every in-flight future,
          innocent or not.  All lost specs become *suspects* and re-run
          one at a time on the fresh pool; a spec that kills its own
          solo pool is definitively the crasher and is charged, while
          innocents simply complete and keep their full retry budget.
          Only these unattributed crashes count toward
          ``max_pool_rebuilds`` -- attributed deaths are bounded by the
          guilty spec's retry budget instead, so one deterministic
          crasher cannot push the whole sweep into degraded mode.
        """
        options = self.options
        jobs = max(1, self.jobs)
        window = _submission_window(jobs, options.window_factor)
        timeout = options.timeout_seconds
        unattributed_deaths = 0
        pool = ProcessPoolExecutor(max_workers=jobs)
        #: Suspects of an unattributed pool crash, re-run one at a time.
        solo: deque = deque()
        # (lanes, future, deadline, is_solo); lanes = [(index, attempt)]
        in_flight: deque = deque()

        def lanes_in_flight() -> int:
            return sum(len(entry[0]) for entry in in_flight)

        def submit(lanes: list, is_solo: bool) -> None:
            if len(lanes) == 1:
                future = pool.submit(
                    _run_spec, self.specs[lanes[0][0]], self.config
                )
            else:
                future = pool.submit(
                    _run_group_payloads,
                    [self.specs[i] for i, _ in lanes],
                    self.config,
                )
            # The wall clock is per *lane*: a B-lane group legitimately
            # takes ~B times one spec's time on its single worker.
            deadline = (
                None
                if timeout is None
                else time.monotonic() + timeout * len(lanes)
            )
            in_flight.append((lanes, future, deadline, is_solo))

        def rebuild() -> None:
            nonlocal pool
            _kill_pool(pool)
            pool = ProcessPoolExecutor(max_workers=jobs)

        try:
            while queue or solo or in_flight:
                pending: list | None = None
                try:
                    if solo:
                        if not in_flight:
                            pending = [solo.popleft()]
                            submit(pending, True)
                    else:
                        while queue and lanes_in_flight() < window:
                            pending = self._next_group(queue)
                            submit(pending, False)
                    pending = None
                except BrokenExecutor:
                    # The pool broke between collections (discovered at
                    # submit): unattributed.  The specs we were
                    # submitting never ran; put them back uncharged.
                    solo.extendleft(reversed(pending))
                    solo.extendleft(
                        reversed(self._harvest_in_flight(in_flight))
                    )
                    unattributed_deaths += 1
                    if self.sink.enabled:
                        self.sink.event(
                            "sweep.pool_crash",
                            pending[0][0],
                            "worker pool died before accepting work; "
                            "rebuilding",
                            deaths=unattributed_deaths,
                        )
                    rebuild()
                    if unattributed_deaths > options.max_pool_rebuilds:
                        self._degrade(queue, solo, unattributed_deaths)
                        return
                    continue
                lanes, future, deadline, is_solo = in_flight.popleft()
                index, attempt = lanes[0]
                spec = self.specs[index]
                try:
                    remaining = (
                        None
                        if deadline is None
                        else max(0.0, deadline - time.monotonic())
                    )
                    payload = future.result(timeout=remaining)
                except FuturesTimeoutError:
                    if future.cancel():
                        # Never started running: it aged out in the
                        # submission queue behind slow specs.  Not the
                        # specs' fault -- resubmit without charge.
                        if is_solo:
                            solo.extendleft(reversed(lanes))
                        else:
                            queue.extendleft(reversed(lanes))
                        continue
                    if len(lanes) == 1:
                        # Attributable: this future's own deadline
                        # passed while it was running.  Terminate its
                        # worker, requeue innocents uncharged, rebuild.
                        if self._handle_timeout(index, attempt):
                            queue.append((index, attempt + 1))
                    else:
                        # A group deadline (timeout x lanes) passed:
                        # unattributable to one lane.  All lanes
                        # requeue uncharged as batching-exempt
                        # singletons, so a genuinely hung lane is
                        # charged on its next, solo, attempt.
                        self._no_batch.update(i for i, _ in lanes)
                        if self.sink.enabled:
                            self.sink.event(
                                "sweep.timeout",
                                index,
                                f"batched group of {len(lanes)} lanes "
                                f"exceeded {timeout}s per lane; "
                                f"re-running its lanes unbatched",
                                timeout_seconds=timeout,
                                lanes=len(lanes),
                            )
                        queue.extendleft(reversed(lanes))
                    queue.extendleft(
                        reversed(self._harvest_in_flight(in_flight))
                    )
                    rebuild()
                except BrokenExecutor:
                    if is_solo:
                        # An isolated re-run killed its own pool:
                        # definitively the crasher -- charge it.
                        if self.sink.enabled:
                            self.sink.event(
                                "sweep.pool_crash",
                                index,
                                f"{spec.benchmark}/{spec.policy} killed "
                                f"its worker (isolated re-run); charged",
                                attempt=attempt + 1,
                            )
                        if self._register_failure(
                            index,
                            attempt,
                            "crash",
                            "BrokenProcessPool",
                            "worker process died (exit/OOM/segfault) "
                            "running this spec in isolation",
                        ):
                            solo.append((index, attempt + 1))
                        rebuild()
                    else:
                        # Windowed crash: any in-flight spec may be the
                        # crasher.  Everyone lost becomes a suspect and
                        # re-runs in isolation, uncharged.
                        unattributed_deaths += 1
                        suspects = lanes_in_flight() + len(lanes)
                        if self.sink.enabled:
                            self.sink.event(
                                "sweep.pool_crash",
                                index,
                                f"worker process died with "
                                f"{suspects} specs in flight; "
                                f"isolating suspects",
                                deaths=unattributed_deaths,
                                suspects=suspects,
                            )
                        solo.extend(lanes)
                        solo.extend(self._harvest_in_flight(in_flight))
                        rebuild()
                        if unattributed_deaths > options.max_pool_rebuilds:
                            self._degrade(queue, solo, unattributed_deaths)
                            return
                except KeyboardInterrupt:
                    _kill_pool(pool)
                    raise
                except Exception as error:
                    # The spec raised inside the worker; the pool is
                    # fine.  The remote traceback rides along as the
                    # exception's __cause__.
                    if len(lanes) > 1:
                        # Group workers settle per-lane failures into
                        # payloads, so a group-level raise is
                        # infrastructure (pickling, lane compat), not
                        # one lane's fault: requeue uncharged as
                        # batching-exempt singletons.
                        self._no_batch.update(i for i, _ in lanes)
                        queue.extendleft(reversed(lanes))
                    elif self._register_failure(
                        index,
                        attempt,
                        "error",
                        type(error).__name__,
                        str(error),
                        "".join(
                            traceback_module.format_exception(error)
                        ),
                    ):
                        queue.append((index, attempt + 1))
                else:
                    if len(lanes) == 1:
                        result, local = payload
                        self._finish_success(index, attempt, result, local)
                    else:
                        for (lane_index, lane_attempt), item in zip(
                            lanes, payload
                        ):
                            self._settle_lane_payload(
                                lane_index, lane_attempt, item, queue
                            )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _degrade(
        self, queue: deque, solo: deque, rebuilds: int
    ) -> None:
        """Too many pool deaths: finish the sweep in-process, serially.

        The sweep-level open-loop fallback.  Timeouts are no longer
        enforceable and a crashing spec becomes fatal, but a flaky
        *environment* (OOM killer, broken pickling of one config, a
        container on fire) stops costing the whole matrix.
        """
        remaining = deque(solo)
        remaining.extend(queue)
        if self.sink.enabled:
            self.sink.event(
                "sweep.degraded",
                -1,
                f"{rebuilds} pool deaths exceeded "
                f"max_pool_rebuilds={self.options.max_pool_rebuilds}; "
                f"finishing {len(remaining)} specs serially in-process",
                rebuilds=rebuilds,
                remaining=len(remaining),
            )
        self._run_serial(remaining)

    # -- telemetry folding ---------------------------------------------------
    def fold_telemetry(self) -> None:
        """Fold completed runs' telemetry into the sink, in spec order.

        Deferred to the end of the sweep (idempotent; also called on
        KeyboardInterrupt): retries and crash re-runs complete out of
        spec order, and only a strict in-spec-order fold reproduces the
        serial emit sequence the decimation/parity guarantees rest on.
        Failed specs contribute nothing -- a half-run's telemetry would
        poison determinism.
        """
        if self._folded or not self.sink.enabled:
            return
        self._folded = True
        for index in range(len(self.specs)):
            outcome = self.outcomes[index]
            if outcome is None or outcome.error is not None:
                continue
            if outcome.from_checkpoint or outcome.from_cache:
                fold_saved_telemetry(self.sink, self._saved_payloads[index])
            elif self._locals[index] is not None:
                merge_telemetry(self.sink, self._locals[index])
        if self.specs:
            last = self.specs[-1]
            self.sink.set_context(last.benchmark, last.policy)
