"""The parallel sweep executor: fan (benchmark x policy x seed) matrices
out over worker processes.

Every experiment driver funnels through :func:`repro.sim.sweep.run_suite`
(or a hand-rolled loop over :func:`repro.sim.sweep.run_one`), and a full
paper reproduction runs hundreds of independent simulations.  Each run
is CPU-bound pure Python/NumPy with no shared mutable state, which makes
the matrix embarrassingly parallel -- but only if the observability
guarantees survive the fan-out.  This module provides:

* :class:`WorkSpec` -- a picklable, self-contained description of one
  run (names + frozen config dataclasses, never live objects), so a
  worker process can rebuild the exact engine the serial path would
  have built;
* :func:`run_specs` -- execute a list of specs either serially (sharing
  the caller's telemetry sink, exactly like the classic loop) or on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, folding each
  worker's local telemetry back into the sink **in spec order**;
* :func:`matrix_specs` -- build the (benchmark x policy x seed) spec
  list in the canonical benchmark-major order used by ``run_suite``;
* :func:`set_default_jobs` / :func:`get_default_jobs` -- a process-wide
  default so ``--jobs`` on a driver's command line reaches every
  ``run_suite`` call inside table modules without threading a parameter
  through each one.

Determinism and telemetry parity
--------------------------------

Results are returned in spec order regardless of completion order, and
every engine is seeded from its spec alone, so ``jobs=N`` is
bit-identical to ``jobs=1`` (property-tested).  Telemetry parity works
because trace decimation is a pure function of the emit sequence:
workers record into a *retain-everything* local
:class:`~repro.telemetry.core.Telemetry` (huge capacity, no decimation)
and the parent re-emits each worker's records onto the sink via
:func:`~repro.telemetry.core.merge_telemetry` in spec order -- the sink
therefore sees the exact emit sequence a serial sweep would have
produced, and retains the exact same records, events, and metrics.  The
one documented difference: profiler *span* timings are per-process
wall-clock and are deliberately not merged, so a parallel sweep's sink
carries the parent's spans only (no per-run ``engine.run`` spans).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.config import (
    DTMConfig,
    FailsafeConfig,
    MachineConfig,
    TelemetryConfig,
    ThermalConfig,
)
from repro.control.pid import AntiWindup
from repro.errors import ConfigError
from repro.faults import FaultSchedule
from repro.sim.results import RunResult
from repro.sim.sweep import DEFAULT_INSTRUCTIONS, run_one
from repro.telemetry.core import Telemetry, ensure_telemetry, merge_telemetry
from repro.thermal.floorplan import Floorplan

#: Worker-local trace/event capacity: effectively "retain everything".
#: Workers must not decimate or drop, because the parent re-emits their
#: records onto the sink, whose own retention policy then applies --
#: decimating twice would diverge from the serial emit sequence.
_RETAIN_ALL = 1 << 30

#: Process-wide default for ``jobs=None`` (1 = classic serial sweep).
_DEFAULT_JOBS = 1


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide default worker count (``0`` = all cores).

    Drivers wire their ``--jobs`` flag here so every ``run_suite`` /
    ``run_specs`` call that does not pass an explicit ``jobs`` fans out.
    """
    global _DEFAULT_JOBS
    if not isinstance(jobs, int) or jobs < 0:
        raise ConfigError(f"jobs must be a non-negative int, got {jobs!r}")
    _DEFAULT_JOBS = jobs


def get_default_jobs() -> int:
    """The process-wide default worker count (see :func:`set_default_jobs`)."""
    return _DEFAULT_JOBS


def resolve_jobs(jobs: int | None, tasks: int) -> int:
    """Effective worker count for ``tasks`` runs.

    ``None`` defers to the process-wide default; ``0`` means "all
    cores"; the result is clamped to ``[1, tasks]`` so a two-run sweep
    never spawns eight idle workers.
    """
    if jobs is None:
        jobs = _DEFAULT_JOBS
    if not isinstance(jobs, int) or jobs < 0:
        raise ConfigError(f"jobs must be a non-negative int or None, got {jobs!r}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, max(1, tasks)))


@dataclass(frozen=True)
class WorkSpec:
    """One self-contained simulation: everything a worker needs, by value.

    Only names and frozen config dataclasses -- never live policy,
    sensor, or engine objects -- so the spec pickles cheaply and the
    worker rebuilds the run through the exact same
    :func:`~repro.sim.sweep.run_one` factory path the serial sweep
    uses.
    """

    benchmark: str
    policy: str
    instructions: float = DEFAULT_INSTRUCTIONS
    seed: int = 0
    floorplan: Floorplan | None = None
    machine: MachineConfig | None = None
    thermal_config: ThermalConfig | None = None
    dtm_config: DTMConfig | None = None
    record_history: bool = False
    anti_windup: AntiWindup = AntiWindup.CONDITIONAL
    setpoint: float | None = None
    fault_schedule: FaultSchedule | None = None
    failsafe: FailsafeConfig | None = None
    #: Extra identifying payload carried through to the caller (e.g. a
    #: per-driver label); not consumed by the executor itself.
    tag: tuple = field(default_factory=tuple)

    @property
    def key(self) -> tuple[str, str, int]:
        """The canonical (benchmark, policy, seed) matrix coordinate."""
        return (self.benchmark, self.policy, self.seed)


def matrix_specs(
    benchmarks: Iterable[str],
    policies: Iterable[str],
    seeds: Iterable[int] = (0,),
    include_baseline: bool = False,
    **common,
) -> list[WorkSpec]:
    """Specs for the full matrix in canonical benchmark-major order.

    The order (benchmark, then policy, then seed) matches the serial
    ``run_suite`` loop, so telemetry folded back in spec order
    reproduces the serial emit sequence.  ``common`` keyword arguments
    (``instructions``, configs, ...) are applied to every spec.
    """
    chosen_policies = list(policies)
    if include_baseline and "none" not in chosen_policies:
        chosen_policies.insert(0, "none")
    return [
        WorkSpec(benchmark=benchmark, policy=policy, seed=seed, **common)
        for benchmark in benchmarks
        for policy in chosen_policies
        for seed in seeds
    ]


def _worker_telemetry_config(
    sink_config: TelemetryConfig | None,
) -> TelemetryConfig:
    """Retain-everything local telemetry for one worker run.

    Profiling is off (spans are per-process and never merged); the
    sample-latency switch is inherited from the sink so the latency
    histogram sees the same number of observations as a serial sweep.
    """
    sample_latency = (
        sink_config.sample_latency if sink_config is not None else True
    )
    return TelemetryConfig(
        trace_capacity=_RETAIN_ALL,
        trace_mode="decimate",
        event_capacity=_RETAIN_ALL,
        profile=False,
        sample_latency=sample_latency,
    )


def _execute(spec: WorkSpec, telemetry) -> RunResult:
    """Run one spec in-process against the given telemetry sink."""
    return run_one(
        spec.benchmark,
        spec.policy,
        instructions=spec.instructions,
        floorplan=spec.floorplan,
        machine=spec.machine,
        thermal_config=spec.thermal_config,
        dtm_config=spec.dtm_config,
        seed=spec.seed,
        record_history=spec.record_history,
        anti_windup=spec.anti_windup,
        setpoint=spec.setpoint,
        fault_schedule=spec.fault_schedule,
        failsafe=spec.failsafe,
        telemetry=telemetry,
    )


def _run_spec(
    spec: WorkSpec, telemetry_config: TelemetryConfig | None
) -> tuple[RunResult, Telemetry | None]:
    """Worker entry point: run one spec with optional local telemetry.

    Module-level (picklable by reference).  Returns the result plus the
    worker's whole local :class:`Telemetry` -- plain dataclass/list
    state, so it pickles -- for the parent to fold into the sink.
    """
    local = (
        Telemetry(telemetry_config) if telemetry_config is not None else None
    )
    result = _execute(spec, local)
    return result, local


def run_specs(
    specs: Sequence[WorkSpec],
    jobs: int | None = None,
    telemetry=None,
) -> list[RunResult]:
    """Execute specs, serially or on a process pool; results in spec order.

    ``jobs <= 1`` runs the classic serial loop sharing ``telemetry``
    directly (identical in every observable way to the pre-executor
    sweeps, including profiler span counts).  ``jobs > 1`` fans out
    over worker processes and folds each worker's retain-everything
    local telemetry back into the sink in spec order, so retained
    traces, events, and merged metrics match the serial run exactly
    (spans excepted; see the module docstring).
    """
    specs = list(specs)
    sink = ensure_telemetry(telemetry)
    jobs = resolve_jobs(jobs, len(specs))
    if jobs <= 1:
        shared = sink if sink.enabled else None
        return [_execute(spec, shared) for spec in specs]
    config = (
        _worker_telemetry_config(getattr(sink, "config", None))
        if sink.enabled
        else None
    )
    results: list[RunResult] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(_run_spec, spec, config) for spec in specs]
        # Collect in SUBMISSION order, not completion order: result
        # ordering and telemetry fold order must match the serial loop.
        for future in futures:
            result, local = future.result()
            results.append(result)
            if local is not None:
                merge_telemetry(sink, local)
    if sink.enabled and specs:
        # A serial sweep leaves the sink contextualized on its last
        # run; match that so downstream snapshot headers agree.
        last = specs[-1]
        sink.set_context(last.benchmark, last.policy)
    return results
