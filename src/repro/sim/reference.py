"""The pinned, unfused fast-engine kernel (bit-identity reference).

:class:`ReferenceFastEngine` preserves the original per-sample body of
:meth:`repro.sim.fast.FastEngine._run` exactly as it stood before the
fused-kernel optimization:

* a fresh ``np.array(phase.activity_vector(...))`` tuple rebuild per
  sample;
* defensive ``.copy()`` property reads of the thermal state and power
  peaks on every access;
* a separate :meth:`~repro.thermal.lumped.LumpedThermalModel.steady_state`
  solve alongside every
  :meth:`~repro.thermal.lumped.LumpedThermalModel.advance`;
* two independent
  :meth:`~repro.thermal.lumped.LumpedThermalModel.fraction_above`
  passes (emergency + stress thresholds);
* list-of-tuples history accumulation with a final ``np.vstack``.

It exists for two reasons:

1. **bit-identity tests** (``tests/test_sim_reference.py``) assert that
   the fused kernel produces *exactly* the same :class:`RunResult` for
   the same seeds -- every optimization in the fused path must be a
   pure strength reduction, not a numerical change;
2. **the kernel benchmark** (``benchmarks/test_bench_parallel.py``)
   measures the fused engine's samples/sec against this pinned
   implementation, so the speedup claim is anchored to a fixed
   baseline rather than to whatever the previous commit happened to
   contain.

One deliberate behavioural difference is documented and tested: the
reference engine carries the pre-fix cycle-budget bug where warmup
consumed its own ``max_cycles`` allowance *in addition to* the
measurement budget, so a warmed-up run could simulate up to twice
``max_cycles``.  The fused engine charges warmup and measurement
against a single shared budget (see the regression test).  Runs whose
budgets are never exhausted -- every comparison in the bit-identity
tests and benchmark -- are unaffected.

Do not "improve" this module; it is intentionally frozen.
"""

from __future__ import annotations

import math
from time import perf_counter

import numpy as np

from repro.errors import SimulationError
from repro.sim.fast import FastEngine
from repro.sim.results import History, RunResult


class ReferenceFastEngine(FastEngine):
    """`FastEngine` with the original (unfused) per-sample kernel."""

    def _run(
        self,
        instructions: float,
        max_cycles: int | None,
        warmup_instructions: float,
    ) -> RunResult:
        if instructions <= 0:
            raise SimulationError("instructions must be positive")
        sample = self.dtm_config.sampling_interval
        sample_seconds = sample * self.machine.cycle_time
        if max_cycles is None:
            # Generous budget: even duty-0 policies eventually release.
            max_cycles = int(40 * instructions / max(0.1, self.profile.mean_ipc))
        emergency_level = self.thermal_config.emergency_temperature
        stress_level = self.dtm_config.nonct_trigger
        fetch_supply = self.machine.fetch_width * self.supply_efficiency

        telemetry = self.telemetry
        recording = telemetry.enabled
        time_samples = False
        sample_start = 0.0
        on_sample = self.manager.on_sample
        if recording:
            telemetry.set_context(self.profile.name, self.policy.name)
            telemetry.meta.update(
                benchmark=self.profile.name,
                policy=self.policy.name,
                block_names=list(self.floorplan.names),
                sample_cycles=sample,
                seed=self.seed,
                supply_efficiency=self.supply_efficiency,
            )
            time_samples = telemetry.config.sample_latency
            if telemetry.profiler.enabled:
                def on_sample(
                    sensed,
                    _base=self.manager.on_sample,
                    _span=telemetry.profiler.span,
                ):
                    with _span("dtm.on_sample"):
                        return _base(sensed)

        rng = np.random.default_rng(
            np.random.SeedSequence([self.profile.seed, self.seed])
        )
        names = self.floorplan.names
        block_count = len(names)

        committed = 0.0
        warmup_remaining = float(warmup_instructions)
        cycles = 0
        emergency_cycles = 0.0
        stress_cycles = 0.0
        block_emergency = np.zeros(block_count)
        block_stress = np.zeros(block_count)
        temp_sum = np.zeros(block_count)
        temp_max = np.full(block_count, -np.inf)
        power_sum = 0.0
        power_max = 0.0
        energy_joules = 0.0
        interrupt_stalls = 0
        samples = 0
        total_committed = 0.0  # includes warmup; drives phase position
        warmup_budget = max_cycles  # pre-fix: warmup got its own budget
        warmup_cycles = 0
        warmup_samples = 0
        history_rows: list[tuple] = []

        while committed < instructions and cycles < max_cycles:
            if time_samples:
                sample_start = perf_counter()
            phase = self.profile.phase_at(int(total_committed))
            activity = np.array(phase.activity_vector(names), dtype=float)
            if phase.jitter:
                activity *= 1.0 + rng.normal(0.0, phase.jitter, block_count)
                np.clip(activity, 0.0, 1.0, out=activity)
                demand_ipc = phase.ipc * (
                    1.0 + rng.normal(0.0, 0.5 * phase.jitter)
                )
            else:
                demand_ipc = phase.ipc
            demand_ipc = max(0.05, demand_ipc)

            if self._monitored is None:
                sensed = self.thermal.max_temperature
            else:
                sensed = float(self.thermal.temperatures[self._monitored].max())
            duty, stall = on_sample(sensed)
            supply_ipc = duty * fetch_supply
            effective_ipc = min(demand_ipc, supply_ipc)
            ratio = effective_ipc / demand_ipc

            utilization = activity * ratio
            powers = self.power_model.block_powers(utilization)
            if self.leakage is not None:
                powers = powers + self.leakage.power(
                    self.power_model.peaks, self.thermal.temperatures
                )
            chip_power = float(powers.sum()) + self.power_model.unmonitored_power(
                float(utilization.mean())
            )

            start = self.thermal.temperatures
            steady = self.thermal.steady_state(powers)
            end = self.thermal.advance(powers, sample)

            if not np.isfinite(chip_power) or not np.all(np.isfinite(end)):
                bad = (
                    names[int(np.argmin(np.isfinite(end)))]
                    if not np.all(np.isfinite(end))
                    else self.thermal.hottest_block
                )
                raise SimulationError(
                    f"non-finite simulation state in profile "
                    f"{self.profile.name!r}",
                    sample_index=self.manager.samples - 1,
                    block=bad,
                    duty=duty,
                    chip_power=chip_power,
                    policy=self.policy.name,
                )

            sample_committed = effective_ipc * max(0, sample - stall)
            total_committed += sample_committed
            if warmup_remaining > 0:
                warmup_remaining -= sample_committed
                warmup_budget -= sample
                warmup_cycles += sample
                warmup_samples += 1
                if warmup_budget <= 0:
                    raise SimulationError(
                        f"warmup of profile {self.profile.name!r} exceeded "
                        f"its cycle budget of {max_cycles:,} cycles "
                        f"({warmup_samples:,} samples consumed, "
                        f"{warmup_remaining:,.0f} warmup instructions "
                        f"still outstanding)",
                        sample_index=self.manager.samples - 1,
                        warmup_cycles=warmup_cycles,
                        warmup_budget=max_cycles,
                        duty=duty,
                        policy=self.policy.name,
                    )
                continue

            em_frac = self.thermal.fraction_above(
                start, steady, sample_seconds, emergency_level
            )
            st_frac = self.thermal.fraction_above(
                start, steady, sample_seconds, stress_level
            )

            em_peak = float(em_frac.max())
            st_peak = float(st_frac.max())
            committed += sample_committed
            cycles += sample
            emergency_cycles += em_peak * sample
            stress_cycles += st_peak * sample
            block_emergency += em_frac * sample
            block_stress += st_frac * sample
            temp_sum += end
            np.maximum(temp_max, end, out=temp_max)
            power_sum += chip_power
            power_max = max(power_max, chip_power)
            energy_joules += chip_power * sample_seconds
            interrupt_stalls += stall
            samples += 1
            if self.record_history:
                history_rows.append(
                    (
                        float(end.max()),
                        duty,
                        chip_power,
                        end,
                        powers,
                        em_frac,
                        st_frac,
                    )
                )
            if recording:
                telemetry.record_sample(
                    index=samples - 1,
                    cycle=cycles,
                    sensed=sensed,
                    max_temp=float(end.max()),
                    block_temps=end,
                    chip_power=chip_power,
                    ipc=sample_committed / sample,
                    duty=duty,
                    emergency_fraction=em_peak,
                    stress_fraction=st_peak,
                    latency_seconds=(
                        perf_counter() - sample_start
                        if time_samples
                        else math.nan
                    ),
                )

        if samples == 0:
            raise SimulationError(
                f"run of profile {self.profile.name!r} produced no samples",
                policy=self.policy.name,
                max_cycles=max_cycles,
            )

        extra: dict[str, float] = {}
        guard = self.manager.failsafe
        if guard is not None:
            extra["failsafe_engagements"] = float(guard.engagements)
            extra["failsafe_rejected_samples"] = float(guard.rejected_samples)
            extra["failsafe_degraded_samples"] = float(guard.degraded_samples)
            extra["failsafe_forced_samples"] = float(guard.failsafe_samples)

        history = None
        if self.record_history:
            history = History(
                sample_cycles=sample,
                names=names,
                max_temp=np.array([row[0] for row in history_rows]),
                duty=np.array([row[1] for row in history_rows]),
                chip_power=np.array([row[2] for row in history_rows]),
                block_temps=np.vstack([row[3] for row in history_rows]),
                block_powers=np.vstack([row[4] for row in history_rows]),
                block_emergency=np.vstack([row[5] for row in history_rows]),
                block_stress=np.vstack([row[6] for row in history_rows]),
            )

        return RunResult(
            benchmark=self.profile.name,
            policy=self.policy.name,
            cycles=cycles,
            instructions=committed,
            emergency_fraction=emergency_cycles / cycles,
            stress_fraction=stress_cycles / cycles,
            block_emergency_fraction={
                name: float(block_emergency[i]) / cycles
                for i, name in enumerate(names)
            },
            block_stress_fraction={
                name: float(block_stress[i]) / cycles
                for i, name in enumerate(names)
            },
            mean_block_temperature={
                name: float(temp_sum[i]) / samples for i, name in enumerate(names)
            },
            max_block_temperature={
                name: float(temp_max[i]) for i, name in enumerate(names)
            },
            mean_chip_power=power_sum / samples,
            max_chip_power=power_max,
            energy_joules=energy_joules,
            engaged_fraction=self.manager.engaged_fraction,
            interrupt_events=self.manager.interrupts.events,
            interrupt_stall_cycles=interrupt_stalls,
            history=history,
            extra=extra,
        )
