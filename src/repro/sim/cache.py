"""Level 5: the persistent, content-addressed cross-sweep result cache.

Every run in this codebase is a pure function of its
:class:`~repro.sim.parallel.WorkSpec`: the engine is seeded from the
spec alone, results round-trip losslessly through the shared codec
(:mod:`repro.sim.codec`), and specs are canonically fingerprinted
(:func:`~repro.sim.checkpoint.spec_fingerprint`).  The first four
performance layers (pool fan-out, the fused kernel, lane batching,
distributed sharding) all make the same work faster; this layer stops
repeating it.  :class:`ResultCache` memoizes completed specs on disk so
a re-run sweep -- an iterating user, CI, overlapping experiment drivers
-- replays its results instead of recomputing them.

Keys and invalidation
---------------------

A cache key is **content-addressed twice over**: the sha256 of the
spec's checkpoint fingerprint extended with the store schema
(:data:`CACHE_SCHEMA`) and the simulation kernel version
(:data:`repro.sim.fast.KERNEL_VERSION`).  Any spec field change
produces a new fingerprint; any kernel-numerics change bumps
``KERNEL_VERSION``; either way old entries simply stop matching -- no
flush step, no way to replay stale numbers.  Orphaned entries are
reclaimed by GC.

Replay parity
-------------

A cache entry stores the same codec payloads the ``repro.sweep/v1``
checkpoint journal stores: the encoded
:class:`~repro.sim.results.RunResult` plus the run's retain-everything
worker telemetry.  A hit therefore replays the result bit-identically
(repr-lossless floats) and folds its traces/events/metrics through
:func:`~repro.sim.codec.fold_saved_telemetry` in spec order -- the
identical path checkpoint resume and the shard coordinator already
use -- so a warm sweep's sink equals a cold one's exactly.  ``cache.*``
orchestration events are the deliberate exception, excluded from
parity like ``sweep.*`` / ``shard.*``.  An entry stored by a
telemetry-less sweep carries no telemetry payload and is treated as a
**miss** when the requesting sweep needs telemetry (the run re-executes
and the entry upgrades in place).

Durability and concurrency
--------------------------

The store is an append-only, fsync'd JSONL log (``cache.log``) plus an
in-memory index, under ``~/.cache/repro`` by default.  Writers follow
the same flock/tempfile/``os.replace`` discipline as
``benchmarks/_receipt.py``: every append happens under an exclusive
``fcntl`` lock on a sibling ``cache.lock``, so concurrent sweeps never
interleave partial lines, and GC publishes its compacted log
atomically.  A crash mid-append leaves at most one torn final line,
which readers skip and the next locked writer truncates
(:func:`~repro.sim.checkpoint.truncate_partial_tail`).  A corrupt line
anywhere is counted, skipped, and reclaimed by the next GC -- a cache
that could abort the sweep it accelerates would be worse than none.

GC is deterministic LRU: ``touch`` lines appended at sweep end record
hit order, the compactor keeps the most-recently-used entries whose
payload bytes fit the budget, and eviction order depends only on log
contents (no clocks).  Hit/miss/eviction counters feed the shared
metrics registry (:func:`cache_metrics`) live and persist as
``counters`` lines so ``python -m repro cache stats`` reports totals
across every process that ever used the store.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

from repro.errors import CacheError
from repro.sim.checkpoint import spec_fingerprint, truncate_partial_tail
from repro.sim.codec import (
    _jsonable,
    result_to_dict,
    telemetry_to_dict,
)
from repro.telemetry.metrics import MetricsRegistry

try:  # pragma: no cover - always present on the POSIX CI runners
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback: best effort
    fcntl = None

import hashlib

#: Version tag of the store's line format, folded into every cache key;
#: bumped on any change to the entry layout.  Entries written under a
#: different schema never match a lookup, so a format change invalidates
#: the store without a migration step.
CACHE_SCHEMA = "repro.cache/v1"

#: Default store location (``--cache`` with no directory, and the
#: ``REPRO_CACHE`` environment variable's conventional value).
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: Default GC budget for entry payload bytes (overridable per store and
#: via ``REPRO_CACHE_MAX_BYTES``).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Shared process-wide metrics registry for cache counters
#: (``cache.hits`` / ``cache.misses`` / ``cache.evictions``); separate
#: from any sweep's telemetry sink on purpose, so cache bookkeeping can
#: never perturb the bit-identical telemetry parity guarantee.
_METRICS = MetricsRegistry()

_COUNTERS = ("hits", "misses", "evictions")


def cache_metrics() -> MetricsRegistry:
    """The shared registry cache counters are recorded on."""
    return _METRICS


def resolve_cache_dir(directory) -> Path:
    """Validate a cache directory; create it; return the absolute path.

    Rejects relative paths (they would silently address a *different*
    cache from every working directory), uncreatable paths, and
    directories this process cannot write, each with an actionable
    message.  ``~`` expands before the absolute-path check, so the
    default ``~/.cache/repro`` always passes.
    """
    if isinstance(directory, Path):
        directory = str(directory)
    if not isinstance(directory, str) or not directory.strip():
        raise CacheError(
            f"cache directory must be a non-empty path, got {directory!r}"
        )
    path = Path(directory).expanduser()
    if not path.is_absolute():
        raise CacheError(
            f"cache directory must be an absolute path, got {directory!r} "
            f"(a relative path names a different cache from every working "
            f"directory; pass e.g. --cache {Path.cwd() / directory})"
        )
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise CacheError(
            f"cannot create cache directory {path}: {error} "
            f"(pick a writable location with --cache DIR or REPRO_CACHE)"
        ) from error
    if not path.is_dir():
        raise CacheError(f"cache path {path} exists but is not a directory")
    if not os.access(path, os.W_OK | os.X_OK):
        raise CacheError(
            f"cache directory {path} is not writable "
            f"(fix its permissions or pick another with --cache DIR)"
        )
    return path


def cache_key(spec, kernel_version: str | None = None) -> str:
    """Content-addressed store key for one spec.

    The checkpoint fingerprint already hashes every result-determining
    spec field; extending it with the store schema and the simulation
    kernel version means a kernel-numerics bump (or a store format
    change) makes every previously written entry unreachable -- clean
    invalidation with no flush step.  ``kernel_version`` defaults to
    the live :data:`repro.sim.fast.KERNEL_VERSION` (read at call time,
    so tests can prove the invalidation property by patching it).
    """
    if kernel_version is None:
        from repro.sim import fast as fast_module

        kernel_version = fast_module.KERNEL_VERSION
    text = f"{spec_fingerprint(spec)}|{CACHE_SCHEMA}|{kernel_version}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


class ResultCache:
    """One directory-backed result store: append-log + index + GC.

    Cheap to construct (the log is scanned lazily and incrementally);
    sweeps open one per invocation from a directory path.  All methods
    are safe against concurrent sweeps sharing the directory -- reads
    tolerate a torn tail and mid-file corruption, writes serialize
    under the ``cache.lock`` flock, and a GC compaction by another
    process is detected by inode change and triggers a rescan.
    """

    def __init__(self, directory=None, max_bytes: int | None = None) -> None:
        self.directory = resolve_cache_dir(
            directory if directory is not None else DEFAULT_CACHE_DIR
        )
        if max_bytes is None:
            env = os.environ.get("REPRO_CACHE_MAX_BYTES")
            max_bytes = int(env) if env else DEFAULT_MAX_BYTES
        if not isinstance(max_bytes, int) or max_bytes <= 0:
            raise CacheError(
                f"max_bytes must be a positive int, got {max_bytes!r}"
            )
        self.max_bytes = max_bytes
        self._log_path = self.directory / "cache.log"
        self._lock_path = self.directory / "cache.lock"
        #: key -> (byte offset, line length, has_telemetry); latest
        #: entry line per key wins, matching the append-log semantics.
        self._index: dict[str, tuple[int, int, bool]] = {}
        self._read_handle = None
        self._log_ino: int | None = None
        self._scan_pos = 0
        self._corrupt = 0
        #: Counter totals read back from persisted ``counters`` lines.
        self._persisted = dict.fromkeys(_COUNTERS, 0)
        #: This instance's unflushed counter deltas.
        self._session = dict.fromkeys(_COUNTERS, 0)
        #: Hit keys in first-hit order, flushed as LRU ``touch`` lines.
        self._touched: dict[str, None] = {}

    # -- log scanning --------------------------------------------------------
    def _reset_view(self) -> None:
        if self._read_handle is not None:
            self._read_handle.close()
            self._read_handle = None
        self._log_ino = None
        self._scan_pos = 0
        self._corrupt = 0
        self._index.clear()
        self._persisted = dict.fromkeys(_COUNTERS, 0)

    def _refresh(self) -> None:
        """Fold any newly appended complete log lines into the index."""
        if self._read_handle is not None:
            try:
                stat = os.stat(self._log_path)
            except FileNotFoundError:
                self._reset_view()
                return
            if stat.st_ino != self._log_ino or stat.st_size < self._scan_pos:
                # GC (ours or another process's) replaced the log; the
                # index offsets point into the old inode.  Rescan.
                self._reset_view()
        if self._read_handle is None:
            try:
                self._read_handle = open(self._log_path, "rb")
            except FileNotFoundError:
                return
            self._log_ino = os.fstat(self._read_handle.fileno()).st_ino
        size = os.fstat(self._read_handle.fileno()).st_size
        if size <= self._scan_pos:
            return
        self._read_handle.seek(self._scan_pos)
        position = self._scan_pos
        for raw in self._read_handle.read().splitlines(keepends=True):
            if not raw.endswith(b"\n"):
                break  # torn tail: a writer was killed mid-append
            self._consume_line(raw, position)
            position += len(raw)
        self._scan_pos = position

    def _consume_line(self, raw: bytes, offset: int) -> None:
        try:
            data = json.loads(raw)
        except ValueError:
            self._corrupt += 1
            return
        if not isinstance(data, dict):
            self._corrupt += 1
            return
        kind = data.get("type")
        if kind == "entry":
            key = data.get("key")
            if isinstance(key, str) and isinstance(data.get("result"), dict):
                self._index[key] = (
                    offset,
                    len(raw),
                    data.get("telemetry") is not None,
                )
            else:
                self._corrupt += 1
        elif kind == "counters":
            for name in _COUNTERS:
                value = data.get(name, 0)
                if isinstance(value, (int, float)):
                    self._persisted[name] += int(value)
        elif kind == "header":
            schema = data.get("schema")
            if schema != CACHE_SCHEMA:
                raise CacheError(
                    f"{self._log_path}: store schema {schema!r} is not "
                    f"{CACHE_SCHEMA!r}; point --cache at a fresh directory"
                )
        elif kind != "touch":
            self._corrupt += 1

    def _read_entry(self, offset: int, length: int) -> dict | None:
        handle = self._read_handle
        if handle is None:
            return None
        handle.seek(offset)
        raw = handle.read(length)
        try:
            entry = json.loads(raw)
        except ValueError:
            return None
        return entry if isinstance(entry, dict) else None

    # -- counters ------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self._session[name] += amount
        _METRICS.counter(f"cache.{name}").inc(amount)

    # -- lookups -------------------------------------------------------------
    def lookup(self, key: str, need_telemetry: bool = False) -> dict | None:
        """The stored entry for ``key``, or ``None`` (a miss).

        ``need_telemetry=True`` treats an entry without a telemetry
        payload as a miss: replaying its result without its trace would
        break the warm/cold parity guarantee, so the spec re-runs (and
        :meth:`store` upgrades the entry with telemetry attached).
        """
        self._refresh()
        location = self._index.get(key)
        if location is not None:
            offset, length, has_telemetry = location
            if has_telemetry or not need_telemetry:
                entry = self._read_entry(offset, length)
                if entry is not None:
                    self._count("hits")
                    # Re-touching moves the key to the back of the LRU
                    # order this sweep will flush.
                    self._touched.pop(key, None)
                    self._touched[key] = None
                    return entry
        self._count("misses")
        return None

    # -- writes --------------------------------------------------------------
    @contextmanager
    def _locked(self):
        handle = open(self._lock_path, "a+", encoding="utf-8")
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            handle.close()

    def _write_lines_locked(self, lines: list[dict], fsync: bool) -> None:
        with open(self._log_path, "a", encoding="utf-8") as handle:
            for data in lines:
                handle.write(json.dumps(_jsonable(data)) + "\n")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())

    def _prepare_log_locked(self) -> None:
        """Header + torn-tail hygiene; caller holds the flock."""
        if (
            not self._log_path.exists()
            or self._log_path.stat().st_size == 0
        ):
            self._write_lines_locked(
                [{"type": "header", "schema": CACHE_SCHEMA}], fsync=True
            )
        else:
            truncate_partial_tail(self._log_path)

    def store(
        self, key: str, spec, result, local_telemetry=None, attempts: int = 1
    ) -> bool:
        """Encode and persist one completed run; True if written."""
        return self.store_payload(
            key,
            spec,
            result_to_dict(result),
            telemetry_to_dict(local_telemetry),
            attempts=attempts,
        )

    def store_payload(
        self,
        key: str,
        spec,
        result_payload: dict,
        telemetry_payload: dict | None,
        attempts: int = 1,
        fingerprint: str | None = None,
    ) -> bool:
        """Persist one run from already-encoded wire payloads.

        Skips (returns False) when the key already holds an entry at
        least as good -- the only accepted overwrite is upgrading a
        telemetry-less entry with one that carries telemetry.  The
        append is fsync'd under the store flock, with a re-check inside
        the lock so concurrent sweeps storing the same spec write one
        entry, not two.
        """
        def fresh_needed() -> bool:
            existing = self._index.get(key)
            return existing is None or (
                telemetry_payload is not None and not existing[2]
            )

        self._refresh()
        if not fresh_needed():
            return False
        with self._locked():
            self._prepare_log_locked()
            self._refresh()
            if not fresh_needed():
                return False
            self._write_lines_locked(
                [
                    {
                        "type": "entry",
                        "key": key,
                        "fingerprint": (
                            fingerprint
                            if fingerprint is not None
                            else spec_fingerprint(spec)
                        ),
                        "benchmark": spec.benchmark,
                        "policy": spec.policy,
                        "seed": spec.seed,
                        "attempts": int(attempts),
                        "result": result_payload,
                        "telemetry": telemetry_payload,
                    }
                ],
                fsync=True,
            )
        self._refresh()
        return True

    def flush(self) -> None:
        """Persist this sweep's LRU touches and counter deltas; maybe GC.

        Called once at the end of a sweep (idempotent; cheap when there
        is nothing to say).  Touch/counter lines ride one locked,
        fsync'd append; afterwards a store grown past ``max_bytes``
        compacts itself.
        """
        lines: list[dict] = [
            {"type": "touch", "key": key} for key in self._touched
        ]
        deltas = {
            name: value for name, value in self._session.items() if value
        }
        if deltas:
            lines.append({"type": "counters", **deltas})
        if lines:
            with self._locked():
                self._prepare_log_locked()
                self._write_lines_locked(lines, fsync=True)
            self._touched.clear()
            # The persisted line is re-read by the next _refresh; only
            # the unflushed deltas reset here, so totals never double.
            self._session = dict.fromkeys(_COUNTERS, 0)
        try:
            size = self._log_path.stat().st_size
        except OSError:
            return
        if size > self.max_bytes:
            self.gc()

    def close(self) -> None:
        """Flush bookkeeping and drop the read handle (idempotent)."""
        self.flush()
        if self._read_handle is not None:
            self._read_handle.close()
            self._read_handle = None
            self._log_ino = None
            self._scan_pos = 0
            self._index.clear()
            self._persisted = dict.fromkeys(_COUNTERS, 0)

    # -- GC ------------------------------------------------------------------
    def gc(self, max_bytes: int | None = None) -> dict:
        """Compact the log, evicting least-recently-used entries.

        Keeps, per key, the latest entry line; orders keys by their
        last use (the greatest log position among the key's entry and
        ``touch`` lines -- purely positional, so two replicas of the
        same log always evict identically); then drops the
        least-recently-used entries until the survivors' payload bytes
        fit the budget.  Corrupt lines and superseded duplicates vanish
        with the compaction, counters lines merge into one, and the new
        log publishes atomically (tempfile + fsync + ``os.replace``)
        under the store flock.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        if not isinstance(budget, int) or budget < 0:
            raise CacheError(
                f"gc budget must be a non-negative int, got {budget!r}"
            )
        with self._locked():
            try:
                raw = self._log_path.read_bytes()
            except FileNotFoundError:
                raw = b""
            entries: dict[str, bytes] = {}
            last_use: dict[str, int] = {}
            totals = dict.fromkeys(_COUNTERS, 0)
            for position, line in enumerate(raw.splitlines(keepends=True)):
                if not line.endswith(b"\n"):
                    break
                try:
                    data = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(data, dict):
                    continue
                kind = data.get("type")
                key = data.get("key")
                if kind == "entry" and isinstance(key, str):
                    if isinstance(data.get("result"), dict):
                        entries[key] = line
                        last_use[key] = position
                elif kind == "touch" and isinstance(key, str):
                    if key in entries:
                        last_use[key] = position
                elif kind == "counters":
                    for name in _COUNTERS:
                        value = data.get(name, 0)
                        if isinstance(value, (int, float)):
                            totals[name] += int(value)
            ordered = sorted(entries, key=lambda k: last_use[k])
            payload_bytes = sum(len(entries[key]) for key in ordered)
            evicted = 0
            while ordered and payload_bytes > budget:
                victim = ordered.pop(0)
                payload_bytes -= len(entries.pop(victim))
                evicted += 1
            totals["evictions"] += evicted
            fd, temp_path = tempfile.mkstemp(
                prefix="cache.log.", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    header = {"type": "header", "schema": CACHE_SCHEMA}
                    handle.write(
                        (json.dumps(header) + "\n").encode("utf-8")
                    )
                    for key in ordered:
                        handle.write(entries[key])
                    if any(totals.values()):
                        handle.write(
                            (
                                json.dumps({"type": "counters", **totals})
                                + "\n"
                            ).encode("utf-8")
                        )
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_path, self._log_path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        if evicted:
            # The compacted counters line already persists the eviction
            # total; only the live registry needs the increment (going
            # through _session too would double-count at next flush).
            _METRICS.counter("cache.evictions").inc(evicted)
        self._reset_view()
        self._refresh()
        return {
            "kept": len(ordered),
            "evicted": evicted,
            "bytes": self._log_path.stat().st_size,
        }

    # -- diagnostics ---------------------------------------------------------
    def stats(self) -> dict:
        """Store summary: entry count, sizes, and lifetime counters.

        Counters are the persisted totals of every sweep that ever
        flushed to this store plus this instance's unflushed deltas;
        the same increments flow live through the shared registry
        (:func:`cache_metrics`) for in-process observability.
        """
        self._refresh()
        try:
            size = self._log_path.stat().st_size
        except OSError:
            size = 0
        return {
            "path": str(self.directory),
            "entries": len(self._index),
            "bytes": size,
            "max_bytes": self.max_bytes,
            "corrupt_lines": self._corrupt,
            **{
                name: self._persisted[name] + self._session[name]
                for name in _COUNTERS
            },
        }

    def verify(self) -> dict:
        """Scan the whole log; report structural and decode problems.

        Unlike :meth:`lookup` (which silently treats damage as a miss),
        this decodes every entry's result payload through the codec and
        reports anything wrong: corrupt lines, undecodable results, a
        torn tail, a missing or foreign schema header.  Returns a
        report dict; never raises for content problems (a missing store
        verifies clean as empty).
        """
        report = {
            "path": str(self._log_path),
            "schema_ok": True,
            "entries": 0,
            "touches": 0,
            "counter_lines": 0,
            "corrupt_lines": 0,
            "undecodable_entries": 0,
            "torn_tail": False,
            "bytes": 0,
            "errors": [],
        }
        try:
            raw = self._log_path.read_bytes()
        except FileNotFoundError:
            return report
        from repro.sim.codec import result_from_dict

        report["bytes"] = len(raw)
        lines = raw.splitlines(keepends=True)
        if lines and not lines[-1].endswith(b"\n"):
            report["torn_tail"] = True
            lines = lines[:-1]
        header_seen = False
        for number, line in enumerate(lines, start=1):
            try:
                data = json.loads(line)
            except ValueError:
                report["corrupt_lines"] += 1
                report["errors"].append(f"line {number}: not JSON")
                continue
            if not isinstance(data, dict):
                report["corrupt_lines"] += 1
                report["errors"].append(f"line {number}: not an object")
                continue
            kind = data.get("type")
            if kind == "header":
                header_seen = True
                if data.get("schema") != CACHE_SCHEMA:
                    report["schema_ok"] = False
                    report["errors"].append(
                        f"line {number}: schema {data.get('schema')!r} "
                        f"is not {CACHE_SCHEMA!r}"
                    )
            elif kind == "entry":
                report["entries"] += 1
                try:
                    result_from_dict(data["result"])
                except Exception as error:
                    report["undecodable_entries"] += 1
                    report["errors"].append(
                        f"line {number}: entry "
                        f"{data.get('key', '?')} undecodable ({error})"
                    )
            elif kind == "touch":
                report["touches"] += 1
            elif kind == "counters":
                report["counter_lines"] += 1
            else:
                report["corrupt_lines"] += 1
                report["errors"].append(
                    f"line {number}: unknown line type {kind!r}"
                )
        if lines and not header_seen:
            report["schema_ok"] = False
            report["errors"].append("missing schema header")
        return report
