"""Result containers and metrics for simulation runs.

The paper's two success metrics (Section 5.2): the percentage of cycles
spent in thermal emergency, and the percentage of the non-DTM IPC that
a managed run retains.  :class:`RunResult` carries those plus the
per-structure detail needed by Tables 4 and 6-10, and optionally a
sample-granularity :class:`History` for trace figures and the offline
boxcar-proxy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class History:
    """Per-sample traces of one run (sample = one controller interval)."""

    sample_cycles: int
    names: tuple[str, ...]
    max_temp: np.ndarray          # (samples,)
    duty: np.ndarray              # (samples,)
    chip_power: np.ndarray        # (samples,)
    block_temps: np.ndarray       # (samples, blocks) end-of-sample
    block_powers: np.ndarray      # (samples, blocks)
    block_emergency: np.ndarray   # (samples, blocks) fraction of sample
    block_stress: np.ndarray      # (samples, blocks) fraction of sample

    @property
    def samples(self) -> int:
        """Number of recorded samples."""
        return len(self.max_temp)

    def time_microseconds(self, cycle_time: float) -> np.ndarray:
        """Sample end-times in microseconds for plotting."""
        ticks = np.arange(1, self.samples + 1, dtype=float)
        return ticks * self.sample_cycles * cycle_time * 1e6


@dataclass
class RunResult:
    """Outcome of one (benchmark, policy) simulation."""

    benchmark: str
    policy: str
    cycles: int
    instructions: float
    #: Fraction of cycles any monitored block exceeded the emergency
    #: threshold.
    emergency_fraction: float
    #: Fraction of cycles any monitored block exceeded the stress
    #: (non-CT trigger) threshold.
    stress_fraction: float
    block_emergency_fraction: dict[str, float]
    block_stress_fraction: dict[str, float]
    mean_block_temperature: dict[str, float]
    max_block_temperature: dict[str, float]
    mean_chip_power: float
    max_chip_power: float
    #: Total chip energy dissipated over the measured run [J].
    energy_joules: float = 0.0
    engaged_fraction: float = 0.0
    interrupt_events: int = 0
    interrupt_stall_cycles: int = 0
    history: History | None = None
    #: Extra engine-specific numbers (detailed core stats, etc.).
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def max_temperature(self) -> float:
        """Hottest temperature any block reached [degC]."""
        return max(self.max_block_temperature.values())

    def relative_ipc(self, baseline: "RunResult") -> float:
        """This run's IPC as a fraction of an unmanaged baseline's."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def performance_loss(self, baseline: "RunResult") -> float:
        """Fractional slowdown vs the baseline (0 = no loss)."""
        return 1.0 - self.relative_ipc(baseline)

    @property
    def energy_per_instruction(self) -> float:
        """Average chip energy per committed instruction [J].

        DTM trades performance for temperature; the energy view shows
        the other side of the trade -- toggling lowers power but
        stretches runtime, so EPI can move either way.
        """
        if not self.instructions:
            return 0.0
        return self.energy_joules / self.instructions
