"""The shared sweep codec: lossless JSON views of specs, results, telemetry.

Three subsystems move sweep state across a process boundary and must
agree byte-for-byte on what comes back:

* the crash-safe checkpoint journal (:mod:`repro.sim.checkpoint`)
  persists completed specs to disk and resumes them bit-identically;
* the distributed shard protocol (:mod:`repro.sim.distributed`) leases
  specs to workers over TCP and streams their results back;
* tests round-trip both paths against the in-process originals.

This module is that single agreement.  Every value codec here is
**repr-lossless for floats**: Python's ``json`` encodes floats with
``repr`` (shortest round-trip form) and parses them back to the exact
same IEEE-754 double, so a :class:`~repro.sim.results.RunResult` -- or
a worker's whole retain-everything telemetry -- survives
``loads(dumps(...))`` bit-exactly (property-tested).  NaN rides along
as the non-strict JSON ``NaN`` literal; both ends of every channel are
this library, so the extension is safe and symmetric.

The spec codec (:func:`spec_to_dict` / :func:`spec_from_dict`) is a
*tagged* encoding over a closed registry of types: the dataclasses,
enums, and plain config objects a :class:`~repro.sim.parallel.WorkSpec`
may carry, and nothing else.  Decoding never imports or constructs an
unregistered type, so a hostile or corrupt lease payload degrades to a
:class:`~repro.errors.CodecError`, not code execution.  A decoded spec
reconstructs through each type's ordinary constructor (validation
re-runs) and fingerprints identically to the original
(:func:`~repro.sim.checkpoint.spec_fingerprint` is content-addressed),
which is what lets the shard coordinator hand out fingerprints as lease
identities and verify them on the worker.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.errors import CodecError
from repro.sim.results import History, RunResult
from repro.telemetry.core import ensure_telemetry
from repro.telemetry.export import event_from_dict, record_from_dict

#: Tag key marking an encoded composite value; chosen to be absent from
#: every plain mapping the sweep types carry.
_TAG = "__repro__"

#: The closed type registry (name -> class), built lazily because
#: :class:`WorkSpec` lives in :mod:`repro.sim.parallel`, which imports
#: the checkpoint machinery (and therefore this module) at load time.
_TYPES: dict | None = None


def _registry() -> dict:
    global _TYPES
    if _TYPES is None:
        from repro.config import (
            BranchPredictorConfig,
            CacheConfig,
            DTMConfig,
            FailsafeConfig,
            MachineConfig,
            TelemetryConfig,
            ThermalConfig,
        )
        from repro.control.pid import AntiWindup
        from repro.faults import FaultSchedule, FaultWindow
        from repro.sim.parallel import WorkSpec
        from repro.thermal.floorplan import Block, Floorplan

        _TYPES = {
            cls.__name__: cls
            for cls in (
                AntiWindup,
                Block,
                BranchPredictorConfig,
                CacheConfig,
                DTMConfig,
                FailsafeConfig,
                FaultSchedule,
                FaultWindow,
                Floorplan,
                MachineConfig,
                TelemetryConfig,
                ThermalConfig,
                WorkSpec,
            )
        }
    return _TYPES


def encode_value(value):
    """Encode one spec-carried value as tagged, JSON-serializable data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return {
            _TAG: "ndarray",
            "dtype": value.dtype.str,
            "shape": list(value.shape),
            "data": value.ravel().tolist(),
        }
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {
            _TAG: "dict",
            "items": [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ],
        }
    name = type(value).__name__
    if _registry().get(name) is not type(value):
        raise CodecError(
            f"cannot encode unregistered type {type(value).__qualname__!r}"
        )
    if isinstance(value, enum.Enum):
        return {_TAG: "enum", "type": name, "value": encode_value(value.value)}
    if dataclasses.is_dataclass(value):
        return {
            _TAG: "dataclass",
            "type": name,
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    # Registered plain classes (FaultSchedule): public attributes are,
    # by that registration contract, exactly the constructor keywords.
    return {
        _TAG: "object",
        "type": name,
        "fields": {
            attr: encode_value(v)
            for attr, v in vars(value).items()
            if not attr.startswith("_")
        },
    }


def decode_value(data):
    """Rebuild a value encoded by :func:`encode_value`.

    Only registry types are ever constructed; anything else raises
    :class:`~repro.errors.CodecError`.
    """
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode_value(v) for v in data]
    if not isinstance(data, dict):
        raise CodecError(f"cannot decode {type(data).__name__} value")
    tag = data.get(_TAG)
    if tag == "tuple":
        return tuple(decode_value(v) for v in data["items"])
    if tag == "dict":
        return {decode_value(k): decode_value(v) for k, v in data["items"]}
    if tag == "ndarray":
        return np.array(
            data["data"], dtype=np.dtype(data["dtype"])
        ).reshape(data["shape"])
    if tag in ("enum", "dataclass", "object"):
        cls = _registry().get(data.get("type"))
        if cls is None:
            raise CodecError(
                f"cannot decode unregistered type {data.get('type')!r}"
            )
        try:
            if tag == "enum":
                return cls(decode_value(data["value"]))
            fields = {
                str(name): decode_value(v)
                for name, v in data["fields"].items()
            }
            return cls(**fields)
        except CodecError:
            raise
        except Exception as error:
            raise CodecError(
                f"cannot rebuild {data.get('type')}: {error}"
            ) from error
    raise CodecError(f"cannot decode untagged mapping {sorted(data)!r}")


def spec_to_dict(spec) -> dict:
    """Tagged JSON view of one :class:`~repro.sim.parallel.WorkSpec`."""
    encoded = encode_value(spec)
    if not (isinstance(encoded, dict) and encoded.get("type") == "WorkSpec"):
        raise CodecError(f"spec_to_dict needs a WorkSpec, got {spec!r}")
    return encoded


def spec_from_dict(data: dict):
    """Rebuild the :class:`WorkSpec` saved by :func:`spec_to_dict`."""
    if not (isinstance(data, dict) and data.get("type") == "WorkSpec"):
        raise CodecError("spec payload is not an encoded WorkSpec")
    return decode_value(data)


# -- result (de)serialization -------------------------------------------------
def _jsonable(value):
    """Map numpy scalars to Python scalars so ``json.dumps`` accepts them."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


def history_to_dict(history: History) -> dict:
    """JSON view of a :class:`History` (arrays as nested lists + dtype)."""
    arrays = {}
    for name in (
        "max_temp",
        "duty",
        "chip_power",
        "block_temps",
        "block_powers",
        "block_emergency",
        "block_stress",
    ):
        array = getattr(history, name)
        arrays[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "data": array.ravel().tolist(),
        }
    return {
        "sample_cycles": history.sample_cycles,
        "names": list(history.names),
        "arrays": arrays,
    }


def history_from_dict(data: dict) -> History:
    """Rebuild a :class:`History` saved by :func:`history_to_dict`."""
    arrays = {
        name: np.array(spec["data"], dtype=np.dtype(spec["dtype"])).reshape(
            spec["shape"]
        )
        for name, spec in data["arrays"].items()
    }
    return History(
        sample_cycles=data["sample_cycles"],
        names=tuple(data["names"]),
        **arrays,
    )


def result_to_dict(result: RunResult) -> dict:
    """JSON view of a :class:`RunResult` (history included).

    Multicore results (from :class:`~repro.sim.parallel.WorkSpec`\\ s
    with ``core_benchmarks``) serialize under ``"kind": "multicore"``
    so journals can hold both result types side by side.
    """
    # Imported lazily: the codec is core sweep machinery; multicore is
    # an optional extension layered on top of it.
    from repro.multicore.results import MulticoreRunResult

    if isinstance(result, MulticoreRunResult):
        return {
            "kind": "multicore",
            "policy": result.policy,
            "coordinator": result.coordinator,
            "cycles": result.cycles,
            "cores": [dataclasses.asdict(core) for core in result.cores],
            "emergency_fraction": result.emergency_fraction,
            "stress_fraction": result.stress_fraction,
            "mean_chip_power": result.mean_chip_power,
            "max_chip_power": result.max_chip_power,
            "energy_joules": result.energy_joules,
            "extra": dict(result.extra),
        }
    return {
        "benchmark": result.benchmark,
        "policy": result.policy,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "emergency_fraction": result.emergency_fraction,
        "stress_fraction": result.stress_fraction,
        "block_emergency_fraction": dict(result.block_emergency_fraction),
        "block_stress_fraction": dict(result.block_stress_fraction),
        "mean_block_temperature": dict(result.mean_block_temperature),
        "max_block_temperature": dict(result.max_block_temperature),
        "mean_chip_power": result.mean_chip_power,
        "max_chip_power": result.max_chip_power,
        "energy_joules": result.energy_joules,
        "engaged_fraction": result.engaged_fraction,
        "interrupt_events": result.interrupt_events,
        "interrupt_stall_cycles": result.interrupt_stall_cycles,
        "history": (
            history_to_dict(result.history)
            if result.history is not None
            else None
        ),
        "extra": dict(result.extra),
    }


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a result saved by :func:`result_to_dict`.

    Returns a :class:`RunResult`, or a
    :class:`~repro.multicore.results.MulticoreRunResult` for entries
    tagged ``"kind": "multicore"``.
    """
    if data.get("kind") == "multicore":
        from repro.multicore.results import CoreResult, MulticoreRunResult

        return MulticoreRunResult(
            policy=data["policy"],
            coordinator=data["coordinator"],
            cycles=data["cycles"],
            cores=tuple(
                CoreResult(**{**core, "extra": dict(core.get("extra", {}))})
                for core in data["cores"]
            ),
            emergency_fraction=data["emergency_fraction"],
            stress_fraction=data["stress_fraction"],
            mean_chip_power=data["mean_chip_power"],
            max_chip_power=data["max_chip_power"],
            energy_joules=data.get("energy_joules", 0.0),
            extra=dict(data.get("extra", {})),
        )
    history = data.get("history")
    return RunResult(
        benchmark=data["benchmark"],
        policy=data["policy"],
        cycles=data["cycles"],
        instructions=data["instructions"],
        emergency_fraction=data["emergency_fraction"],
        stress_fraction=data["stress_fraction"],
        block_emergency_fraction=dict(data["block_emergency_fraction"]),
        block_stress_fraction=dict(data["block_stress_fraction"]),
        mean_block_temperature=dict(data["mean_block_temperature"]),
        max_block_temperature=dict(data["max_block_temperature"]),
        mean_chip_power=data["mean_chip_power"],
        max_chip_power=data["max_chip_power"],
        energy_joules=data.get("energy_joules", 0.0),
        engaged_fraction=data.get("engaged_fraction", 0.0),
        interrupt_events=data.get("interrupt_events", 0),
        interrupt_stall_cycles=data.get("interrupt_stall_cycles", 0),
        history=history_from_dict(history) if history is not None else None,
        extra=dict(data.get("extra", {})),
    )


# -- telemetry (de)serialization ----------------------------------------------
def telemetry_to_dict(local) -> dict | None:
    """JSON view of one run's worker-local retain-everything telemetry."""
    if local is None:
        return None
    return {
        "records": [record.to_dict() for record in local.trace.records()],
        "events": [event.to_dict() for event in local.trace.events],
        "metrics": local.metrics.snapshot(),
        "meta": dict(local.meta),
    }


def fold_saved_telemetry(sink, payload: dict | None) -> None:
    """Re-emit one saved run's telemetry onto a live sink.

    Mirrors :func:`~repro.telemetry.core.merge_telemetry` exactly:
    records and events re-emit through the sink's own retention policy,
    metrics fold under the registry's associative merge, meta updates.
    No-op when the sink is disabled or the payload is empty (the entry
    came from a telemetry-less sweep).  Both the checkpoint resume path
    and the shard coordinator fold through here, in spec order, which
    is what makes resumed and distributed sweeps' retained traces
    bit-identical to an uninterrupted local one.
    """
    sink = ensure_telemetry(sink)
    if not sink.enabled or payload is None:
        return
    for data in payload.get("records", ()):
        sink.trace.record(record_from_dict(data))
    for data in payload.get("events", ()):
        sink.trace.events.append(event_from_dict(data))
    sink.metrics.merge_snapshot(payload.get("metrics", {}))
    if payload.get("meta"):
        sink.meta.update(payload["meta"])
