"""Lane-batched simulation: one vectorized kernel, many sweeps at once.

The paper's evaluation is sweep-shaped: every table is a grid of
*independent* (benchmark x policy x seed) runs over one shared
floorplan and sampling configuration.  :class:`BatchEngine` exploits
that independence with a structure-of-arrays kernel: B lanes share one
stacked thermal state ``(B, n_blocks)``, and each sampling interval
advances every live lane through

* one stacked :meth:`~repro.thermal.lumped.LumpedThermalModel.
  advance_batch` exponential update,
* one broadcast :meth:`~repro.thermal.lumped.LumpedThermalModel.
  fractions_above` pass over both thresholds and all lanes,
* one vectorized supply/power evaluation.

Only the inherently scalar per-lane work -- the phase bisect, the
seeded jitter draws, and the :class:`~repro.dtm.manager.DTMManager`
control decision -- stays in a Python loop, so the per-sample numpy
dispatch overhead (the serial kernel's dominant cost at 17-block
problem sizes) is amortized over the whole batch.

Bit-identity, not approximate equivalence, is the contract: every
vectorized expression is the same elementwise arithmetic the serial
:class:`~repro.sim.fast.FastEngine` kernel evaluates, merely broadcast
over the leading lane axis, and the axis-1 reductions (``max``,
``sum``, ``mean``) run the same sequential inner loop numpy uses for
the serial kernel's 1-D arrays.  ``tests/test_sim_batch.py`` asserts
results, histories, traces, and metrics equal to per-lane serial runs,
including ragged lane lengths, injected faults, and failsafe
engagement.

Divergence between lanes is handled with masks, not synchronization:
a lane that finishes early (or dies on a non-finite state) is frozen
-- removed from the active row set with its thermal row and
accumulators untouched -- while the remaining lanes keep stepping.
Results pop in spec order regardless of completion order.

The planner (:func:`plan_batches`) groups *compatible* specs -- same
floorplan / machine / thermal / DTM configuration, differing
benchmark, policy, or seed -- into lanes; incompatible or multicore
specs fall back to singleton groups that run through the ordinary
serial path.  :mod:`repro.sim.parallel` composes these groups inside
each pool worker, so ``jobs`` (processes) multiplies with ``batch``
(lanes per kernel).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.power.clock_gating import ClockGatingStyle
from repro.sim.checkpoint import _canonical
from repro.sim.fast import FastEngine, build_phase_tables
from repro.sim.results import History, RunResult
from repro.sim.sweep import _validate_instructions, build_engine


def validate_batch(batch, *, allow_none: bool = False) -> None:
    """Reject batch widths that are bools or < 1.

    Mirrors the ``jobs`` validation in :mod:`repro.sim.parallel`
    (``bool`` is an ``int`` subclass, so ``batch=True`` would silently
    mean "one lane").
    """
    if batch is None and allow_none:
        return
    if isinstance(batch, bool) or not isinstance(batch, int) or batch < 1:
        expected = "a positive int" + (" or None" if allow_none else "")
        raise ConfigError(f"batch must be {expected}, got {batch!r}")


def batch_compatibility_key(spec) -> str | None:
    """Canonical grouping key for a spec, or ``None`` if unbatchable.

    Two specs may share a :class:`BatchEngine` iff they agree on the
    whole simulation *environment* -- floorplan, machine, thermal, and
    DTM configuration -- while benchmark, policy, seed, instruction
    budget, faults, and failsafe are free to differ per lane.
    Multicore specs (``core_benchmarks``) never batch.
    """
    if getattr(spec, "core_benchmarks", ()):
        return None
    return repr(
        _canonical(
            (spec.floorplan, spec.machine, spec.thermal_config,
             spec.dtm_config)
        )
    )


def plan_batches(specs, batch: int, skip=()) -> list[list[int]]:
    """Group spec indices into lane batches of width <= ``batch``.

    Only *consecutive* compatible specs group together, so the results
    (and any checkpoint journal appends) stay in an order the serial
    executor could also have produced.  Specs whose key is ``None``
    (multicore) always form singleton groups.

    ``skip`` names spec indices to leave out of the plan entirely --
    the cross-sweep result cache (:mod:`repro.sim.cache`) passes its
    hit set here so cached lanes drop out of the batch and only the
    misses occupy kernel lanes.  A skipped spec also breaks lane
    adjacency (groups stay contiguous runs of the *original* spec
    list), keeping the plan a strict sub-plan of the uncached one;
    lane grouping never changes bits, so this costs correctness
    nothing and keeps the planner's output easy to reason about.
    """
    validate_batch(batch)
    skip = frozenset(skip)
    groups: list[list[int]] = []
    current: list[int] = []
    current_key: str | None = None
    for index, spec in enumerate(specs):
        if index in skip:
            if current:
                groups.append(current)
            current = []
            current_key = None
            continue
        key = batch_compatibility_key(spec)
        if (
            key is not None
            and key == current_key
            and len(current) < batch
        ):
            current.append(index)
            continue
        if current:
            groups.append(current)
        current = [index]
        current_key = key
    if current:
        groups.append(current)
    return groups


def engine_for_spec(spec, telemetry=None) -> FastEngine:
    """Build the (unrun) :class:`FastEngine` for one lane spec.

    Delegates to :func:`repro.sim.sweep.build_engine` -- the exact
    factory :func:`~repro.sim.sweep.run_one` uses -- so a batched lane
    starts from an engine bit-identical to its serial counterpart.
    """
    if getattr(spec, "core_benchmarks", ()):
        raise SimulationError(
            f"multicore spec {spec.benchmark!r} cannot be lane-batched"
        )
    return build_engine(
        spec.benchmark,
        spec.policy,
        floorplan=spec.floorplan,
        machine=spec.machine,
        thermal_config=spec.thermal_config,
        dtm_config=spec.dtm_config,
        seed=spec.seed,
        record_history=spec.record_history,
        anti_windup=spec.anti_windup,
        setpoint=spec.setpoint,
        fault_schedule=spec.fault_schedule,
        failsafe=spec.failsafe,
        telemetry=telemetry,
    )


@dataclass
class LaneOutcome:
    """Terminal state of one lane: a result or the error that killed it."""

    result: RunResult | None = None
    error: BaseException | None = None


def run_spec_lanes(specs, telemetries=None) -> list[LaneOutcome]:
    """Run compatible specs as lanes of one :class:`BatchEngine`.

    ``telemetries`` is an optional per-lane sequence (parallel workers
    pass per-lane retain-everything sinks that the parent later folds
    in spec order).  Per-lane failures -- bad instruction budgets,
    unknown benchmarks, non-finite simulation states -- are captured in
    that lane's :class:`LaneOutcome`; the other lanes run to completion
    regardless.
    """
    specs = list(specs)
    if telemetries is None:
        telemetries = [None] * len(specs)
    outcomes = [LaneOutcome() for _ in specs]
    engines: list[FastEngine] = []
    lanes: list[int] = []
    budgets: list[float] = []
    for index, (spec, telemetry) in enumerate(zip(specs, telemetries)):
        try:
            budget = _validate_instructions(spec.instructions)
            engine = engine_for_spec(spec, telemetry=telemetry)
        except Exception as error:  # captured, not raised: lane-local
            outcomes[index].error = error
            continue
        engines.append(engine)
        lanes.append(index)
        budgets.append(budget)
    if engines:
        for index, outcome in zip(
            lanes, BatchEngine(engines).run_outcomes(instructions=budgets)
        ):
            outcomes[index] = outcome
    return outcomes


class _Lane:
    """Mutable per-lane kernel state (one serial run's locals)."""

    __slots__ = (
        "engine", "slot", "profile", "policy", "manager", "telemetry",
        "recording", "time_samples", "on_sample", "rng",
        "phase_total", "phase_ends", "phase_activity", "phase_jitter",
        "phase_ipc", "single_phase",
        "instructions", "max_cycles", "budget_remaining",
        "warmup_remaining", "warmup_cycles", "warmup_samples",
        "committed", "total_committed", "cycles",
        "emergency_cycles", "stress_cycles",
        "power_sum", "power_max", "energy_joules",
        "interrupt_stalls", "samples",
        "record_history", "hist_cap", "h_max_temp", "h_duty",
        "h_chip_power", "h_temps", "h_powers", "h_em", "h_st",
        "error",
    )


class BatchEngine:
    """Run B independent :class:`FastEngine` simulations in lock-step.

    ``engines`` are *unrun* engines (see
    :func:`~repro.sim.sweep.build_engine`); every engine must share the
    same floorplan, machine, thermal, and DTM configuration -- the
    compatibility :func:`plan_batches` guarantees for grouped specs --
    while benchmark profiles, policies, seeds, sensors, fault
    schedules, and failsafe guards are free to differ per lane.

    Results are bit-identical to running each engine's ``run()``
    serially.  Two deliberate observability exceptions, both shared
    with the PR-4 parallel executor's worker model: profiler *spans*
    are not reproduced lane-per-lane (the stacked thermal call cannot
    attribute its time to one lane), and per-sample ``latency_seconds``
    measures the batched step, not an isolated serial step.
    """

    def __init__(self, engines) -> None:
        engines = list(engines)
        if not engines:
            raise SimulationError("BatchEngine needs at least one lane")
        first = engines[0]
        key = repr(_canonical((
            first.floorplan, first.machine,
            first.thermal_config, first.dtm_config,
        )))
        for index, engine in enumerate(engines):
            if engine.leakage is not None:
                raise SimulationError(
                    f"lane {index}: leakage models cannot be lane-batched"
                )
            if engine._monitored is not None:
                raise SimulationError(
                    f"lane {index}: sensor placement (monitored_blocks) "
                    f"cannot be lane-batched"
                )
            if engine.power_model.gating is not ClockGatingStyle.CC3:
                raise SimulationError(
                    f"lane {index}: only CC3 clock gating is lane-batched"
                )
            if engine.supply_efficiency != first.supply_efficiency:
                raise SimulationError(
                    f"lane {index}: supply_efficiency differs from lane 0"
                )
            if index and repr(_canonical((
                engine.floorplan, engine.machine,
                engine.thermal_config, engine.dtm_config,
            ))) != key:
                raise SimulationError(
                    f"lane {index}: incompatible simulation environment "
                    f"(floorplan/machine/thermal/DTM configuration must "
                    f"match lane 0)"
                )
        self.engines = engines

    def __len__(self) -> int:
        return len(self.engines)

    def run(
        self,
        instructions=2_000_000,
        max_cycles=None,
        warmup_instructions=0,
    ) -> list[RunResult]:
        """Run every lane; raise the earliest (spec-order) lane error.

        Equivalent to serially running each engine and stopping at the
        first failure: lanes *after* a failed lane did execute here,
        but their results are discarded, so the observable behaviour
        (the raised exception) matches the serial loop.
        """
        outcomes = self.run_outcomes(
            instructions, max_cycles, warmup_instructions
        )
        for outcome in outcomes:
            if outcome.error is not None:
                raise outcome.error
        return [outcome.result for outcome in outcomes]

    def run_outcomes(
        self,
        instructions=2_000_000,
        max_cycles=None,
        warmup_instructions=0,
    ) -> list[LaneOutcome]:
        """Run every lane to completion-or-error; never raises per-lane.

        Each argument is a scalar (applied to every lane) or a
        per-lane sequence.  Returns one :class:`LaneOutcome` per lane,
        in lane order.
        """
        count = len(self.engines)
        instructions = _per_lane(instructions, count, "instructions")
        max_cycles = _per_lane(max_cycles, count, "max_cycles")
        warmup_instructions = _per_lane(
            warmup_instructions, count, "warmup_instructions"
        )
        return self._run(instructions, max_cycles, warmup_instructions)

    def _run(self, instructions, max_cycles, warmup) -> list[LaneOutcome]:
        first = self.engines[0]
        sample = first.dtm_config.sampling_interval
        sample_seconds = sample * first.machine.cycle_time
        emergency_level = first.thermal_config.emergency_temperature
        stress_level = first.dtm_config.nonct_trigger
        thresholds = (emergency_level, stress_level)
        fetch_supply = first.machine.fetch_width * first.supply_efficiency
        thermal = first.thermal
        peaks = first.power_model.peaks_view
        idle = first.power_model.idle_fraction
        active_frac = 1.0 - idle
        unmonitored_peak = first.floorplan.unmonitored_peak_power
        names = first.floorplan.names
        block_count = len(names)
        count = len(self.engines)

        lanes: list[_Lane] = []
        outcomes = [LaneOutcome() for _ in range(count)]
        temps = np.empty((count, block_count))
        # Stacked block-level accumulators: one fancy-indexed update
        # per sample replaces four small per-lane array ops.
        block_em = np.zeros((count, block_count))
        block_st = np.zeros((count, block_count))
        temp_sum = np.zeros((count, block_count))
        temp_max = np.full((count, block_count), -np.inf)

        for slot, engine in enumerate(self.engines):
            lane = _Lane()
            lane.engine = engine
            lane.slot = slot
            lane.profile = engine.profile
            lane.policy = engine.policy
            lane.manager = engine.manager
            lane.error = None
            budget = instructions[slot]
            if budget <= 0:
                outcomes[slot].error = SimulationError(
                    "instructions must be positive"
                )
                continue
            lane.instructions = budget
            lane_max = max_cycles[slot]
            if lane_max is None:
                lane_max = int(
                    40 * budget / max(0.1, engine.profile.mean_ipc)
                )
            lane.max_cycles = lane_max
            lane.budget_remaining = lane_max
            lane.warmup_remaining = float(warmup[slot])
            lane.warmup_cycles = 0
            lane.warmup_samples = 0

            telemetry = engine.telemetry
            lane.telemetry = telemetry
            lane.recording = telemetry.enabled
            lane.time_samples = False
            on_sample = engine.manager.on_sample
            if lane.recording:
                telemetry.set_context(
                    engine.profile.name, engine.policy.name
                )
                telemetry.meta.update(
                    benchmark=engine.profile.name,
                    policy=engine.policy.name,
                    block_names=list(engine.floorplan.names),
                    sample_cycles=sample,
                    seed=engine.seed,
                    supply_efficiency=engine.supply_efficiency,
                )
                lane.time_samples = telemetry.config.sample_latency
                if telemetry.profiler.enabled:
                    def on_sample(
                        sensed,
                        _base=engine.manager.on_sample,
                        _span=telemetry.profiler.span,
                    ):
                        with _span("dtm.on_sample"):
                            return _base(sensed)
            lane.on_sample = on_sample

            lane.rng = np.random.default_rng(
                np.random.SeedSequence([engine.profile.seed, engine.seed])
            )
            lane.phase_total = engine.profile.total_instructions
            (
                lane.phase_ends,
                lane.phase_activity,
                lane.phase_jitter,
                lane.phase_ipc,
            ) = build_phase_tables(engine.profile, names)
            lane.single_phase = len(lane.phase_ends) == 1

            lane.committed = 0.0
            lane.total_committed = 0.0
            lane.cycles = 0
            lane.emergency_cycles = 0.0
            lane.stress_cycles = 0.0
            lane.power_sum = 0.0
            lane.power_max = 0.0
            lane.energy_joules = 0.0
            lane.interrupt_stalls = 0
            lane.samples = 0

            lane.record_history = engine.record_history
            lane.hist_cap = 0
            if lane.record_history:
                lane.hist_cap = 1024
                lane.h_max_temp = np.empty(lane.hist_cap)
                lane.h_duty = np.empty(lane.hist_cap)
                lane.h_chip_power = np.empty(lane.hist_cap)
                lane.h_temps = np.empty((lane.hist_cap, block_count))
                lane.h_powers = np.empty((lane.hist_cap, block_count))
                lane.h_em = np.empty((lane.hist_cap, block_count))
                lane.h_st = np.empty((lane.hist_cap, block_count))

            temps[slot] = engine.thermal.temperatures_view
            lanes.append(lane)

        # Preallocated structure-of-arrays step buffers (row r of each
        # holds lane ``active[r]`` this sample).
        a_buf = np.empty((count, block_count))
        demand_buf = np.empty(count)
        duty_buf = np.empty(count)
        stall_buf = np.empty(count, dtype=np.int64)
        duties_py: list[float] = [0.0] * count

        active = lanes
        while active:
            k = len(active)
            iter_start = perf_counter() if any(
                lane.time_samples for lane in active
            ) else 0.0
            rows = np.fromiter(
                (lane.slot for lane in active), dtype=np.intp, count=k
            )
            start = temps[rows]
            sensed = start.max(axis=1)
            activity = a_buf[:k]
            demand = demand_buf[:k]
            duty = duty_buf[:k]
            stalls = stall_buf[:k]
            for r, lane in enumerate(active):
                # Scalar per-lane work: phase lookup, seeded jitter
                # draws (per-lane RNG stream, same draw order as the
                # serial kernel), and the DTM control decision.
                if lane.single_phase:
                    index = 0
                else:
                    position = (
                        int(lane.total_committed) % lane.phase_total
                    )
                    index = bisect_right(lane.phase_ends, position)
                jitter = lane.phase_jitter[index]
                if jitter:
                    row = activity[r]
                    np.multiply(
                        lane.phase_activity[index],
                        1.0 + lane.rng.normal(0.0, jitter, block_count),
                        out=row,
                    )
                    np.clip(row, 0.0, 1.0, out=row)
                    demand_ipc = lane.phase_ipc[index] * (
                        1.0 + lane.rng.normal(0.0, 0.5 * jitter)
                    )
                else:
                    activity[r] = lane.phase_activity[index]
                    demand_ipc = lane.phase_ipc[index]
                demand[r] = max(0.05, demand_ipc)
                duty_r, stall_r = lane.on_sample(float(sensed[r]))
                duties_py[r] = duty_r
                duty[r] = duty_r
                stalls[r] = stall_r

            # One vectorized pass over all live lanes: identical
            # elementwise arithmetic to the serial kernel, broadcast
            # over the lane axis.
            supply = duty * fetch_supply
            effective = np.minimum(demand, supply)
            ratio = effective / demand
            utilization = activity * ratio[:, None]
            powers = peaks * (idle + active_frac * utilization)
            unmonitored = unmonitored_peak * (
                idle + active_frac * utilization.mean(axis=1)
            )
            chip_power = powers.sum(axis=1) + unmonitored
            end, steady = thermal.advance_batch(start, powers, sample)
            finite = np.isfinite(chip_power) & np.isfinite(end).all(axis=1)
            fractions = thermal.fractions_above(
                start, steady, sample_seconds, thresholds
            )
            em_peaks = fractions[0].max(axis=1)
            st_peaks = fractions[1].max(axis=1)
            sample_committed = effective * np.maximum(0, sample - stalls)

            measuring: list[int] = []
            ok_rows: list[int] = []
            still_active: list[_Lane] = []
            completed: list[_Lane] = []
            for r, lane in enumerate(active):
                if not finite[r]:
                    # Same diagnostics as the serial guard; the lane is
                    # frozen (thermal row untouched) and the others
                    # keep stepping.
                    end_row = end[r]
                    row_finite = np.isfinite(end_row)
                    if not row_finite.all():
                        bad = names[int(np.argmin(row_finite))]
                    else:
                        bad = names[int(np.argmax(end_row))]
                    lane.error = SimulationError(
                        f"non-finite simulation state in profile "
                        f"{lane.profile.name!r}",
                        sample_index=lane.manager.samples - 1,
                        block=bad,
                        duty=duties_py[r],
                        chip_power=float(chip_power[r]),
                        policy=lane.policy.name,
                    )
                    continue
                ok_rows.append(r)
                committed_r = float(sample_committed[r])
                lane.total_committed += committed_r
                lane.budget_remaining -= sample
                if lane.warmup_remaining > 0:
                    lane.warmup_remaining -= committed_r
                    lane.warmup_cycles += sample
                    lane.warmup_samples += 1
                    if lane.budget_remaining <= 0:
                        lane.error = SimulationError(
                            f"warmup of profile {lane.profile.name!r} "
                            f"exceeded its cycle budget of "
                            f"{lane.max_cycles:,} cycles "
                            f"({lane.warmup_samples:,} samples consumed, "
                            f"{lane.warmup_remaining:,.0f} warmup "
                            f"instructions still outstanding)",
                            sample_index=lane.manager.samples - 1,
                            warmup_cycles=lane.warmup_cycles,
                            warmup_budget=lane.max_cycles,
                            duty=duties_py[r],
                            policy=lane.policy.name,
                        )
                        continue
                    still_active.append(lane)
                    continue
                chip_r = float(chip_power[r])
                lane.committed += committed_r
                lane.cycles += sample
                lane.emergency_cycles += float(em_peaks[r]) * sample
                lane.stress_cycles += float(st_peaks[r]) * sample
                lane.power_sum += chip_r
                lane.power_max = max(lane.power_max, chip_r)
                lane.energy_joules += chip_r * sample_seconds
                lane.interrupt_stalls += int(stalls[r])
                lane.samples += 1
                measuring.append(r)
                if lane.record_history:
                    if lane.samples > lane.hist_cap:
                        _grow_lane_history(lane, block_count)
                    row = lane.samples - 1
                    lane.h_max_temp[row] = end[r].max()
                    lane.h_duty[row] = duties_py[r]
                    lane.h_chip_power[row] = chip_r
                    lane.h_temps[row] = end[r]
                    lane.h_powers[row] = powers[r]
                    lane.h_em[row] = fractions[0][r]
                    lane.h_st[row] = fractions[1][r]
                if lane.recording:
                    lane.telemetry.record_sample(
                        index=lane.samples - 1,
                        cycle=lane.cycles,
                        sensed=float(sensed[r]),
                        max_temp=float(end[r].max()),
                        block_temps=end[r],
                        chip_power=chip_r,
                        ipc=committed_r / sample,
                        duty=duties_py[r],
                        emergency_fraction=float(em_peaks[r]),
                        stress_fraction=float(st_peaks[r]),
                        latency_seconds=(
                            perf_counter() - iter_start
                            if lane.time_samples
                            else math.nan
                        ),
                    )
                if (
                    lane.committed < lane.instructions
                    and lane.budget_remaining > 0
                ):
                    still_active.append(lane)
                else:
                    completed.append(lane)

            if measuring:
                m = np.fromiter(measuring, dtype=np.intp)
                g = rows[m]
                block_em[g] += fractions[0][m] * sample
                block_st[g] += fractions[1][m] * sample
                temp_sum[g] += end[m]
                temp_max[g] = np.maximum(temp_max[g], end[m])
            # Finalized only now: the stacked block accumulation above
            # must include the completing lane's last sample.
            for lane in completed:
                outcomes[lane.slot] = self._finalize(
                    lane, sample, names, block_em, block_st,
                    temp_sum, temp_max,
                )
            if ok_rows:
                o = np.fromiter(ok_rows, dtype=np.intp)
                temps[rows[o]] = end[o]
            active = still_active

        for lane in lanes:
            if lane.error is not None:
                outcomes[lane.slot] = LaneOutcome(error=lane.error)
        return outcomes

    def _finalize(
        self, lane, sample, names, block_em, block_st, temp_sum, temp_max
    ) -> LaneOutcome:
        """Assemble one lane's RunResult exactly as the serial kernel."""
        if lane.samples == 0:
            return LaneOutcome(error=SimulationError(
                f"run of profile {lane.profile.name!r} produced no samples",
                policy=lane.policy.name,
                max_cycles=lane.max_cycles,
            ))
        slot = lane.slot
        extra: dict[str, float] = {}
        guard = lane.manager.failsafe
        if guard is not None:
            extra["failsafe_engagements"] = float(guard.engagements)
            extra["failsafe_rejected_samples"] = float(
                guard.rejected_samples
            )
            extra["failsafe_degraded_samples"] = float(
                guard.degraded_samples
            )
            extra["failsafe_forced_samples"] = float(guard.failsafe_samples)
        history = None
        if lane.record_history:
            history = History(
                sample_cycles=sample,
                names=names,
                max_temp=lane.h_max_temp[: lane.samples].copy(),
                duty=lane.h_duty[: lane.samples].copy(),
                chip_power=lane.h_chip_power[: lane.samples].copy(),
                block_temps=lane.h_temps[: lane.samples].copy(),
                block_powers=lane.h_powers[: lane.samples].copy(),
                block_emergency=lane.h_em[: lane.samples].copy(),
                block_stress=lane.h_st[: lane.samples].copy(),
            )
        result = RunResult(
            benchmark=lane.profile.name,
            policy=lane.policy.name,
            cycles=lane.cycles,
            instructions=lane.committed,
            emergency_fraction=lane.emergency_cycles / lane.cycles,
            stress_fraction=lane.stress_cycles / lane.cycles,
            block_emergency_fraction={
                name: float(block_em[slot, i]) / lane.cycles
                for i, name in enumerate(names)
            },
            block_stress_fraction={
                name: float(block_st[slot, i]) / lane.cycles
                for i, name in enumerate(names)
            },
            mean_block_temperature={
                name: float(temp_sum[slot, i]) / lane.samples
                for i, name in enumerate(names)
            },
            max_block_temperature={
                name: float(temp_max[slot, i])
                for i, name in enumerate(names)
            },
            mean_chip_power=lane.power_sum / lane.samples,
            max_chip_power=lane.power_max,
            energy_joules=lane.energy_joules,
            engaged_fraction=lane.manager.engaged_fraction,
            interrupt_events=lane.manager.interrupts.events,
            interrupt_stall_cycles=lane.interrupt_stalls,
            history=history,
            extra=extra,
        )
        return LaneOutcome(result=result)


def _grow_lane_history(lane: _Lane, block_count: int) -> None:
    """Double one lane's history buffers (amortized growth)."""
    lane.hist_cap *= 2
    cap = lane.hist_cap
    for attr in (
        "h_max_temp", "h_duty", "h_chip_power",
        "h_temps", "h_powers", "h_em", "h_st",
    ):
        buffer = getattr(lane, attr)
        grown = np.empty((cap, *buffer.shape[1:]))
        grown[: len(buffer)] = buffer
        setattr(lane, attr, grown)


def _per_lane(value, count: int, name: str) -> list:
    """Normalize a scalar-or-sequence argument to one value per lane."""
    if isinstance(value, (list, tuple, np.ndarray)):
        values = list(value)
        if len(values) != count:
            raise SimulationError(
                f"{name} sequence has {len(values)} entries "
                f"for {count} lanes"
            )
        return values
    return [value] * count
