"""The fast engine: sample-granularity simulation for paper-scale sweeps.

One iteration covers one controller sampling interval (1000 cycles).
Per sample the engine:

1. looks up the workload phase at the current committed-instruction
   position and draws its jittered activity vector and demand IPC
   (seeded -- runs are bit-reproducible);
2. asks the :class:`~repro.dtm.manager.DTMManager` for the fetch duty,
   given the hottest block temperature at the sample boundary (exactly
   the paper's sensor/controller timing);
3. converts duty to throughput: the front end can supply at most
   ``duty * fetch_width * supply_efficiency`` instructions per cycle,
   so the sample commits ``min(demand, supply)`` IPC -- low-ILP phases
   absorb mild toggling for free, which is the paper's observation
   that "the program's ILP characteristics [can] permit the DTM
   mechanism to work well without penalizing performance";
4. scales structure activity by the achieved throughput ratio, turns
   it into per-block power (Wattch CC3), and advances the lumped RC
   model with the *exact* exponential update;
5. accounts emergency/stress time with sub-sample accuracy from the
   closed-form trajectory.

``supply_efficiency`` is calibrated against the detailed core
(experiment C1).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from time import perf_counter

import numpy as np

from repro.config import DTMConfig, MachineConfig, ThermalConfig
from repro.dtm.manager import DTMManager
from repro.dtm.policies import NoDTMPolicy
from repro.errors import SimulationError
from repro.power.clock_gating import ClockGatingStyle
from repro.power.wattch import PowerModel
from repro.sim.results import History, RunResult
from repro.telemetry.core import ensure_telemetry
from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel
from repro.workloads.profiles import BenchmarkProfile

#: Fraction of nominal fetch bandwidth the front end sustains through
#: toggling.  Calibrated against the detailed core (experiment C1):
#: gated fetch cycles interact with branch-driven fetch-block breaks,
#: so the sustained supply is ~0.8 * duty * fetch_width.
DEFAULT_SUPPLY_EFFICIENCY = 0.80

#: Version tag of the sample kernel's numerics.  The cross-sweep result
#: cache (:mod:`repro.sim.cache`) folds this tag into every cache key,
#: so bumping it after any change that can alter computed results --
#: the fused sample kernel, the thermal update, the power model, the
#: workload phase draw -- cleanly invalidates every previously stored
#: entry instead of replaying stale numbers.  Bump the suffix whenever
#: a commit changes simulation output for an unchanged spec.
KERNEL_VERSION = "fast-kernel/v1"


def _grow(buffer: np.ndarray, capacity: int) -> np.ndarray:
    """Double a history buffer, preserving its leading rows."""
    grown = np.empty((capacity, *buffer.shape[1:]))
    grown[: len(buffer)] = buffer
    return grown


def build_phase_tables(
    profile: BenchmarkProfile, names: tuple[str, ...]
) -> tuple[list[int], list[np.ndarray], list[float], list[float]]:
    """Prebuilt per-phase lookup tables for the fused sample kernel.

    Returns ``(phase_ends, phase_activity, phase_jitter, phase_ipc)``:
    cumulative instruction boundaries (so the phase at a
    committed-instruction position is one ``bisect``), read-only
    activity arrays, and scalar jitter/IPC per phase.  Shared by the
    single-lane kernel (:meth:`FastEngine._run`) and the lane-batched
    kernel (:class:`repro.sim.batch.BatchEngine`) so both look up the
    exact same prebuilt arrays -- part of the bit-identity argument.
    """
    phase_ends: list[int] = []
    running = 0
    phase_activity: list[np.ndarray] = []
    phase_jitter: list[float] = []
    phase_ipc: list[float] = []
    for phase in profile.phases:
        running += phase.instructions
        phase_ends.append(running)
        base = np.array(phase.activity_vector(names), dtype=float)
        base.flags.writeable = False
        phase_activity.append(base)
        phase_jitter.append(phase.jitter)
        phase_ipc.append(phase.ipc)
    return phase_ends, phase_activity, phase_jitter, phase_ipc


class FastEngine:
    """Sample-granularity workload/power/thermal/DTM simulation."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        policy=None,
        floorplan: Floorplan | None = None,
        machine: MachineConfig | None = None,
        thermal_config: ThermalConfig | None = None,
        dtm_config: DTMConfig | None = None,
        seed: int = 0,
        gating: ClockGatingStyle = ClockGatingStyle.CC3,
        sensor=None,
        record_history: bool = False,
        supply_efficiency: float = DEFAULT_SUPPLY_EFFICIENCY,
        leakage=None,
        monitored_blocks: tuple[str, ...] | None = None,
        failsafe=None,
        actuator=None,
        telemetry=None,
    ) -> None:
        if not 0.0 < supply_efficiency <= 1.0:
            raise SimulationError("supply_efficiency must be in (0, 1]")
        self.profile = profile
        self.floorplan = floorplan if floorplan is not None else Floorplan.default()
        self.machine = machine if machine is not None else MachineConfig()
        self.thermal_config = (
            thermal_config if thermal_config is not None else ThermalConfig()
        )
        self.dtm_config = dtm_config if dtm_config is not None else DTMConfig()
        self.policy = policy if policy is not None else NoDTMPolicy()
        # ``telemetry`` is a repro.telemetry.Telemetry (opt-in; None is
        # the zero-overhead null object asserted bit-identical by tests).
        self.telemetry = ensure_telemetry(telemetry)
        # ``failsafe`` is a FailsafeConfig or prebuilt FailsafeGuard;
        # ``actuator`` lets fault-injection wrappers replace the stock
        # FetchToggling (see repro.faults).
        self.manager = DTMManager(
            self.policy,
            self.dtm_config,
            sensor=sensor,
            failsafe=failsafe,
            actuator=actuator,
            telemetry=telemetry,
        )
        self.power_model = PowerModel(self.floorplan, gating=gating)
        self.thermal = LumpedThermalModel(
            self.floorplan,
            heatsink_temperature=self.thermal_config.heatsink_temperature,
            cycle_time=self.machine.cycle_time,
        )
        if self.telemetry.enabled and self.telemetry.profiler.enabled:
            self.thermal.attach_profiler(self.telemetry.profiler)
        self.seed = seed
        self.record_history = record_history
        self.supply_efficiency = supply_efficiency
        #: Optional :class:`~repro.power.leakage.LeakageModel`: adds
        #: temperature-dependent leakage (quasi-static per sample).
        self.leakage = leakage
        # Sensor placement (paper Section 4.2's future-work caveat:
        # "the number of sensors is likely to be limited, and they may
        # not be co-located with the most likely hot spots").  The DTM
        # loop only sees the temperatures of the monitored blocks; the
        # emergency accounting still uses the true physical field.
        if monitored_blocks is None:
            self._monitored = None
        else:
            if not monitored_blocks:
                raise SimulationError("need at least one monitored block")
            self._monitored = np.array(
                [self.floorplan.index(name) for name in monitored_blocks]
            )

    def run(
        self,
        instructions: float = 2_000_000,
        max_cycles: int | None = None,
        warmup_instructions: float = 0,
    ) -> RunResult:
        """Simulate until ``instructions`` commit (or ``max_cycles``).

        ``warmup_instructions`` are executed first with full dynamics
        (thermal state, DTM, phase position all advance) but excluded
        from every reported metric -- the analogue of the paper's
        skipping the first 2 billion instructions of each benchmark.
        """
        with self.telemetry.span("engine.run"):
            return self._run(instructions, max_cycles, warmup_instructions)

    def _run(
        self,
        instructions: float,
        max_cycles: int | None,
        warmup_instructions: float,
    ) -> RunResult:
        """The fused per-sample kernel.

        Optimized but **bit-identical** to the original (pinned as
        :class:`repro.sim.reference.ReferenceFastEngine` and asserted
        equal by ``tests/test_sim_reference.py``): every transformation
        below is a pure strength reduction --

        * per-phase activity vectors are prebuilt numpy arrays looked
          up by committed-instruction position (no per-sample tuple
          rebuild + ``np.array``);
        * thermal state and power peaks are read through cached
          read-only views (no defensive per-read copies);
        * one fused :meth:`~repro.thermal.lumped.LumpedThermalModel.
          advance_from` call returns ``(end, steady)`` and shares the
          steady-state solve the original computed twice;
        * the emergency and stress thresholds go through one broadcast
          :meth:`~repro.thermal.lumped.LumpedThermalModel.
          fractions_above` pass instead of two full kernels;
        * history lands in preallocated (amortized-doubling) buffers
          instead of a list of tuples + ``np.vstack``.
        """
        if instructions <= 0:
            raise SimulationError("instructions must be positive")
        sample = self.dtm_config.sampling_interval
        sample_seconds = sample * self.machine.cycle_time
        if max_cycles is None:
            # Generous budget: even duty-0 policies eventually release.
            max_cycles = int(40 * instructions / max(0.1, self.profile.mean_ipc))
        emergency_level = self.thermal_config.emergency_temperature
        stress_level = self.dtm_config.nonct_trigger
        thresholds = (emergency_level, stress_level)
        fetch_supply = self.machine.fetch_width * self.supply_efficiency

        # Telemetry is opt-in: ``recording`` is hoisted into a local so
        # the disabled path costs one boolean test per sample and the
        # simulation arithmetic is untouched (bit-identical results).
        telemetry = self.telemetry
        recording = telemetry.enabled
        time_samples = False
        sample_start = 0.0
        on_sample = self.manager.on_sample
        if recording:
            telemetry.set_context(self.profile.name, self.policy.name)
            telemetry.meta.update(
                benchmark=self.profile.name,
                policy=self.policy.name,
                block_names=list(self.floorplan.names),
                sample_cycles=sample,
                seed=self.seed,
                supply_efficiency=self.supply_efficiency,
            )
            time_samples = telemetry.config.sample_latency
            if telemetry.profiler.enabled:
                def on_sample(
                    sensed,
                    _base=self.manager.on_sample,
                    _span=telemetry.profiler.span,
                ):
                    with _span("dtm.on_sample"):
                        return _base(sensed)

        rng = np.random.default_rng(
            np.random.SeedSequence([self.profile.seed, self.seed])
        )
        names = self.floorplan.names
        block_count = len(names)

        # -- precomputed per-phase tables (replaces phase_at + the
        # per-sample activity_vector tuple rebuild).  ``phase_ends``
        # holds cumulative instruction boundaries, so the phase at a
        # committed-instruction position is one bisect; the prebuilt
        # activity arrays are marked read-only because the non-jittered
        # path hands them straight to the power computation.
        phase_total = self.profile.total_instructions
        phase_ends, phase_activity, phase_jitter, phase_ipc = (
            build_phase_tables(self.profile, names)
        )
        single_phase = len(phase_ends) == 1

        # -- hoisted hot-path handles (no per-sample attribute chains).
        thermal = self.thermal
        power_model = self.power_model
        peaks = power_model.peaks_view
        leakage = self.leakage
        monitored = self._monitored
        # CC3 (the default) is inlined; the clip in block_powers is a
        # value-level no-op here because activity and ratio are both in
        # [0, 1] by construction, so the inlined product is identical.
        fused_cc3 = power_model.gating is ClockGatingStyle.CC3
        idle = power_model.idle_fraction
        active = 1.0 - idle
        unmonitored_peak = self.floorplan.unmonitored_peak_power

        committed = 0.0
        warmup_remaining = float(warmup_instructions)
        cycles = 0
        emergency_cycles = 0.0
        stress_cycles = 0.0
        block_emergency = np.zeros(block_count)
        block_stress = np.zeros(block_count)
        temp_sum = np.zeros(block_count)
        temp_max = np.full(block_count, -np.inf)
        power_sum = 0.0
        power_max = 0.0
        energy_joules = 0.0
        interrupt_stalls = 0
        samples = 0
        total_committed = 0.0  # includes warmup; drives phase position
        # One shared budget for warmup + measurement (the original
        # engine gave warmup its own ``max_cycles`` allowance on top of
        # the main loop's, so a warmed-up run could simulate up to
        # twice the requested budget -- regression-tested).
        budget_remaining = max_cycles
        warmup_cycles = 0
        warmup_samples = 0

        # -- preallocated history buffers (amortized doubling growth).
        record_history = self.record_history
        hist_cap = 0
        if record_history:
            hist_cap = 1024
            h_max_temp = np.empty(hist_cap)
            h_duty = np.empty(hist_cap)
            h_chip_power = np.empty(hist_cap)
            h_temps = np.empty((hist_cap, block_count))
            h_powers = np.empty((hist_cap, block_count))
            h_em = np.empty((hist_cap, block_count))
            h_st = np.empty((hist_cap, block_count))

        while committed < instructions and budget_remaining > 0:
            if time_samples:
                sample_start = perf_counter()
            if single_phase:
                index = 0
            else:
                position = int(total_committed) % phase_total
                index = bisect_right(phase_ends, position)
            jitter = phase_jitter[index]
            if jitter:
                activity = phase_activity[index] * (
                    1.0 + rng.normal(0.0, jitter, block_count)
                )
                np.clip(activity, 0.0, 1.0, out=activity)
                demand_ipc = phase_ipc[index] * (
                    1.0 + rng.normal(0.0, 0.5 * jitter)
                )
            else:
                activity = phase_activity[index]
                demand_ipc = phase_ipc[index]
            demand_ipc = max(0.05, demand_ipc)

            temps = thermal.temperatures_view
            if monitored is None:
                sensed = float(temps.max())
            else:
                sensed = float(temps[monitored].max())
            duty, stall = on_sample(sensed)
            supply_ipc = duty * fetch_supply
            effective_ipc = min(demand_ipc, supply_ipc)
            ratio = effective_ipc / demand_ipc

            utilization = activity * ratio
            if fused_cc3:
                powers = peaks * (idle + active * utilization)
                unmonitored = unmonitored_peak * (
                    idle + active * float(utilization.mean())
                )
            else:
                powers = power_model.block_powers(utilization)
                unmonitored = power_model.unmonitored_power(
                    float(utilization.mean())
                )
            if leakage is not None:
                powers = powers + leakage.power(peaks, temps)
            chip_power = float(powers.sum()) + unmonitored

            # One fused thermal call: steady state solved once and
            # shared between the exponential update and the threshold
            # crossing analysis.  ``temps`` stays a valid pre-advance
            # snapshot because advance_from rebinds the model state.
            end, steady = thermal.advance_from(temps, powers, sample)

            # Guard rails: a non-finite power or temperature means the
            # loop has blown up (NaN sensor feedback, runaway gains,
            # ...).  Fail loudly with the state needed to triage it
            # instead of silently poisoning every downstream metric.
            if not np.isfinite(chip_power) or not np.all(np.isfinite(end)):
                bad = (
                    names[int(np.argmin(np.isfinite(end)))]
                    if not np.all(np.isfinite(end))
                    else thermal.hottest_block
                )
                raise SimulationError(
                    f"non-finite simulation state in profile "
                    f"{self.profile.name!r}",
                    sample_index=self.manager.samples - 1,
                    block=bad,
                    duty=duty,
                    chip_power=chip_power,
                    policy=self.policy.name,
                )

            sample_committed = effective_ipc * max(0, sample - stall)
            total_committed += sample_committed
            budget_remaining -= sample
            if warmup_remaining > 0:
                # Warmup samples are excluded from every metric but
                # still advance the samples-independent safety
                # accounting, so a wedged warmup is diagnosable.
                warmup_remaining -= sample_committed
                warmup_cycles += sample
                warmup_samples += 1
                if budget_remaining <= 0:
                    raise SimulationError(
                        f"warmup of profile {self.profile.name!r} exceeded "
                        f"its cycle budget of {max_cycles:,} cycles "
                        f"({warmup_samples:,} samples consumed, "
                        f"{warmup_remaining:,.0f} warmup instructions "
                        f"still outstanding)",
                        sample_index=self.manager.samples - 1,
                        warmup_cycles=warmup_cycles,
                        warmup_budget=max_cycles,
                        duty=duty,
                        policy=self.policy.name,
                    )
                continue

            # One broadcast pass over both thresholds (emergency row 0,
            # stress row 1) instead of two independent kernels.
            fractions = thermal.fractions_above(
                temps, steady, sample_seconds, thresholds
            )
            em_frac = fractions[0]
            st_frac = fractions[1]

            em_peak = float(em_frac.max())
            st_peak = float(st_frac.max())
            committed += sample_committed
            cycles += sample
            emergency_cycles += em_peak * sample
            stress_cycles += st_peak * sample
            block_emergency += em_frac * sample
            block_stress += st_frac * sample
            temp_sum += end
            np.maximum(temp_max, end, out=temp_max)
            power_sum += chip_power
            power_max = max(power_max, chip_power)
            energy_joules += chip_power * sample_seconds
            interrupt_stalls += stall
            samples += 1
            if record_history:
                if samples > hist_cap:
                    hist_cap *= 2
                    h_max_temp = _grow(h_max_temp, hist_cap)
                    h_duty = _grow(h_duty, hist_cap)
                    h_chip_power = _grow(h_chip_power, hist_cap)
                    h_temps = _grow(h_temps, hist_cap)
                    h_powers = _grow(h_powers, hist_cap)
                    h_em = _grow(h_em, hist_cap)
                    h_st = _grow(h_st, hist_cap)
                row = samples - 1
                h_max_temp[row] = end.max()
                h_duty[row] = duty
                h_chip_power[row] = chip_power
                h_temps[row] = end
                h_powers[row] = powers
                h_em[row] = em_frac
                h_st[row] = st_frac
            if recording:
                telemetry.record_sample(
                    index=samples - 1,
                    cycle=cycles,
                    sensed=sensed,
                    max_temp=float(end.max()),
                    block_temps=end,
                    chip_power=chip_power,
                    ipc=sample_committed / sample,
                    duty=duty,
                    emergency_fraction=em_peak,
                    stress_fraction=st_peak,
                    latency_seconds=(
                        perf_counter() - sample_start
                        if time_samples
                        else math.nan
                    ),
                )

        if samples == 0:
            raise SimulationError(
                f"run of profile {self.profile.name!r} produced no samples",
                policy=self.policy.name,
                max_cycles=max_cycles,
            )

        extra: dict[str, float] = {}
        guard = self.manager.failsafe
        if guard is not None:
            extra["failsafe_engagements"] = float(guard.engagements)
            extra["failsafe_rejected_samples"] = float(guard.rejected_samples)
            extra["failsafe_degraded_samples"] = float(guard.degraded_samples)
            extra["failsafe_forced_samples"] = float(guard.failsafe_samples)

        history = None
        if record_history:
            # Trim the doubling buffers to the recorded row count; the
            # copies also release the (up to 2x) growth slack.
            history = History(
                sample_cycles=sample,
                names=names,
                max_temp=h_max_temp[:samples].copy(),
                duty=h_duty[:samples].copy(),
                chip_power=h_chip_power[:samples].copy(),
                block_temps=h_temps[:samples].copy(),
                block_powers=h_powers[:samples].copy(),
                block_emergency=h_em[:samples].copy(),
                block_stress=h_st[:samples].copy(),
            )

        return RunResult(
            benchmark=self.profile.name,
            policy=self.policy.name,
            cycles=cycles,
            instructions=committed,
            emergency_fraction=emergency_cycles / cycles,
            stress_fraction=stress_cycles / cycles,
            block_emergency_fraction={
                name: float(block_emergency[i]) / cycles
                for i, name in enumerate(names)
            },
            block_stress_fraction={
                name: float(block_stress[i]) / cycles
                for i, name in enumerate(names)
            },
            mean_block_temperature={
                name: float(temp_sum[i]) / samples for i, name in enumerate(names)
            },
            max_block_temperature={
                name: float(temp_max[i]) for i, name in enumerate(names)
            },
            mean_chip_power=power_sum / samples,
            max_chip_power=power_max,
            energy_joules=energy_joules,
            engaged_fraction=self.manager.engaged_fraction,
            interrupt_events=self.manager.interrupts.events,
            interrupt_stall_cycles=interrupt_stalls,
            history=history,
            extra=extra,
        )
