"""The detailed simulator: cycle-level core + power + thermal + DTM.

This is the paper's actual simulation flow (Section 5.2): each cycle
the pipeline model determines per-structure activity, the power model
converts it to per-structure power, and the thermal model integrates
Equation 5; every sampling interval the DTM manager reads the hottest
block and sets the fetch-toggling duty.  Interrupt stalls gate fetch
for their duration.

Pure-Python cycle simulation is slow, so this engine is used for
validation, microbenchmarks, and calibrating the fast engine -- not
for the full 18-benchmark sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.config import DTMConfig, MachineConfig, ThermalConfig
from repro.dtm.manager import DTMManager
from repro.dtm.policies import NoDTMPolicy
from repro.errors import SimulationError
from repro.power.clock_gating import ClockGatingStyle
from repro.power.wattch import PowerModel
from repro.sim.results import RunResult
from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel
from repro.uarch.pipeline import OutOfOrderCore
from repro.workloads.generator import instruction_stream
from repro.workloads.profiles import BenchmarkProfile


class DetailedSimulator:
    """Cycle-level coupled simulation of one benchmark under one policy."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        policy=None,
        machine: MachineConfig | None = None,
        floorplan: Floorplan | None = None,
        thermal_config: ThermalConfig | None = None,
        dtm_config: DTMConfig | None = None,
        seed: int = 0,
        gating: ClockGatingStyle = ClockGatingStyle.CC3,
    ) -> None:
        self.profile = profile
        self.machine = machine if machine is not None else MachineConfig()
        self.floorplan = floorplan if floorplan is not None else Floorplan.default()
        self.thermal_config = (
            thermal_config if thermal_config is not None else ThermalConfig()
        )
        self.dtm_config = dtm_config if dtm_config is not None else DTMConfig()
        self.policy = policy if policy is not None else NoDTMPolicy()
        self.manager = DTMManager(self.policy, self.dtm_config)
        self.power_model = PowerModel(self.floorplan, gating=gating)
        self.thermal = LumpedThermalModel(
            self.floorplan,
            heatsink_temperature=self.thermal_config.heatsink_temperature,
            cycle_time=self.machine.cycle_time,
        )
        self._stall_until = 0
        self.core = OutOfOrderCore(
            self.machine,
            instruction_stream(profile, seed=seed),
            fetch_gate=self._fetch_allowed,
        )

    def _fetch_allowed(self, cycle: int) -> bool:
        if cycle < self._stall_until:
            return False
        return self.manager.actuator.allows(cycle)

    def run(
        self, max_cycles: int, max_instructions: int | None = None
    ) -> RunResult:
        """Run the coupled simulation for a cycle/instruction budget."""
        if max_cycles <= 0:
            raise SimulationError("max_cycles must be positive")
        names = self.floorplan.names
        block_count = len(names)
        sampling = self.dtm_config.sampling_interval
        emergency_level = self.thermal_config.emergency_temperature
        stress_level = self.dtm_config.nonct_trigger

        emergency_cycles = 0
        stress_cycles = 0
        block_emergency = np.zeros(block_count)
        block_stress = np.zeros(block_count)
        temp_sum = np.zeros(block_count)
        temp_max = np.full(block_count, -np.inf)
        power_sum = 0.0
        power_max = 0.0
        interrupt_stalls = 0
        unmonitored_peak = self.floorplan.unmonitored_peak_power

        for _ in range(max_cycles):
            cycle = self.core.cycle
            if cycle % sampling == 0:
                duty, stall = self.manager.on_sample(self.thermal.max_temperature)
                if stall:
                    self._stall_until = cycle + stall
                    interrupt_stalls += stall
            activity = self.core.step()
            utilization = self.power_model.utilization_from_counts(activity.counts)
            powers = self.power_model.block_powers(utilization)
            chip_power = float(powers.sum()) + self.power_model.unmonitored_power(
                float(utilization.mean())
            )
            temps = self.thermal.step_cycle(powers)

            hottest = float(temps.max())
            if hottest > emergency_level:
                emergency_cycles += 1
            if hottest > stress_level:
                stress_cycles += 1
            block_emergency += temps > emergency_level
            block_stress += temps > stress_level
            temp_sum += temps
            np.maximum(temp_max, temps, out=temp_max)
            power_sum += chip_power
            power_max = max(power_max, chip_power)

            if (
                max_instructions is not None
                and self.core.stats.committed >= max_instructions
            ):
                break

        cycles = self.core.stats.cycles
        stats = self.core.stats
        return RunResult(
            benchmark=self.profile.name,
            policy=self.policy.name,
            cycles=cycles,
            instructions=float(stats.committed),
            emergency_fraction=emergency_cycles / cycles,
            stress_fraction=stress_cycles / cycles,
            block_emergency_fraction={
                name: float(block_emergency[i]) / cycles
                for i, name in enumerate(names)
            },
            block_stress_fraction={
                name: float(block_stress[i]) / cycles
                for i, name in enumerate(names)
            },
            mean_block_temperature={
                name: float(temp_sum[i]) / cycles for i, name in enumerate(names)
            },
            max_block_temperature={
                name: float(temp_max[i]) for i, name in enumerate(names)
            },
            mean_chip_power=power_sum / cycles,
            max_chip_power=power_max,
            engaged_fraction=self.manager.engaged_fraction,
            interrupt_events=self.manager.interrupts.events,
            interrupt_stall_cycles=interrupt_stalls,
            extra={
                "mispredict_rate": stats.mispredict_rate,
                "dl1_miss_rate": self.core.memory.dl1.miss_rate,
                "il1_miss_rate": self.core.memory.il1.miss_rate,
                "fetch_gated_cycles": float(stats.fetch_gated_cycles),
                "wrong_path_cycles": float(stats.wrong_path_cycles),
            },
        )
