"""The shard worker: lease specs, execute them locally, stream results.

A worker is deliberately thin.  All simulation goes through the exact
machinery a local sweep uses -- :func:`repro.sim.parallel
.execute_payloads`, which composes process-level ``jobs`` and
lane-level ``batch`` on the worker's own cores -- so a spec produces
the same bits no matter which machine ran it.  The worker's own logic
is only transport:

* connect and authenticate (``hello``/``welcome``), retrying while the
  coordinator is not up yet (so workers and coordinator can start in
  any order) and between sweeps (so one resident worker serves every
  ``run_suite`` an experiments driver issues);
* lease up to ``jobs x batch`` specs at a time, re-deriving each spec's
  fingerprint locally and refusing a lease whose content hash does not
  match its claimed identity;
* heartbeat from a side thread while executing, so a long-running
  lease is visibly alive and never expires under a healthy worker;
* stream one ``result`` per spec -- success or captured failure, both
  through the shared ``repr``-lossless codec -- and wait for the
  coordinator's post-fsync ``ack``;
* treat a lost coordinator like a lost worker is treated on the other
  side: abandon the session and reconnect.  Whatever was mid-flight
  simply re-leases; runs are pure functions of their specs, so re-work
  is waste, never wrongness.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro.config import TelemetryConfig
from repro.errors import ShardError
from repro.sim.checkpoint import spec_fingerprint
from repro.sim.codec import result_to_dict, spec_from_dict, telemetry_to_dict
from repro.sim.distributed.protocol import (
    SHARD_SCHEMA,
    ClusterConfig,
    expect_message,
    write_message,
)
from repro.sim.parallel import (
    _worker_telemetry_config,
    execute_payloads,
    resolve_batch,
    resolve_jobs,
)


def _default_name() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


class _Heartbeat:
    """Send ``heartbeat`` lines on an interval from a daemon thread."""

    def __init__(self, wfile, lock: threading.Lock, interval: float) -> None:
        self._wfile = wfile
        self._lock = lock
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="shard-heartbeat", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                write_message(
                    self._wfile, {"type": "heartbeat"}, self._lock
                )
            except OSError:
                return  # connection is gone; the main loop will notice

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


def _execute_session(
    rfile, wfile, write_lock, cluster, jobs, batch, capacity, stats
) -> bool:
    """One connected session: lease/execute/report until the sweep ends.

    Returns True when the coordinator reported the sweep complete
    (False never happens -- a lost connection raises instead).
    """
    welcome = expect_message(rfile, "welcome")
    if welcome.get("schema") != SHARD_SCHEMA:
        raise ShardError(
            f"coordinator speaks {welcome.get('schema')!r}, "
            f"not {SHARD_SCHEMA!r}"
        )
    heartbeat_seconds = float(
        welcome.get("heartbeat_seconds", cluster.heartbeat_seconds)
    )
    telemetry = welcome.get("telemetry") or {}
    config = (
        _worker_telemetry_config(
            TelemetryConfig(
                sample_latency=bool(telemetry.get("sample_latency", True))
            )
        )
        if telemetry.get("enabled")
        else None
    )
    while True:
        write_message(
            wfile, {"type": "lease", "max": capacity}, write_lock
        )
        grant = expect_message(rfile, "grant")
        state = grant.get("state")
        if state == "complete":
            return True
        if state == "wait":
            time.sleep(
                float(grant.get("retry_seconds", cluster.poll_seconds))
            )
            continue
        if state != "ok":
            raise ShardError(f"grant has unknown state {state!r}")
        leases = grant.get("leases") or []
        specs = []
        for lease in leases:
            spec = spec_from_dict(lease.get("spec"))
            if spec_fingerprint(spec) != lease.get("fingerprint"):
                raise ShardError(
                    "lease fingerprint does not match its spec content"
                )
            specs.append(spec)
        with _Heartbeat(wfile, write_lock, heartbeat_seconds):
            payloads = execute_payloads(
                specs, jobs=jobs, batch=batch, telemetry_config=config
            )
            for lease, payload in zip(leases, payloads):
                message = {
                    "type": "result",
                    "index": lease["index"],
                    "fingerprint": lease["fingerprint"],
                    "attempt": lease.get("attempt", 0),
                }
                if payload[0] == "ok":
                    _, result, local = payload
                    message["ok"] = True
                    message["result"] = result_to_dict(result)
                    message["telemetry"] = telemetry_to_dict(local)
                else:
                    _, exc_type, error_message, tb = payload
                    message["ok"] = False
                    message["failure"] = {
                        "kind": "error",
                        "exc_type": exc_type,
                        "message": error_message,
                        "traceback": tb,
                    }
                    stats["failures"] += 1
                write_message(wfile, message, write_lock)
                expect_message(rfile, "ack")
                stats["executed"] += 1


def run_worker(
    cluster: ClusterConfig,
    jobs: int | None = None,
    batch: int | None = None,
    once: bool = False,
    idle_timeout: float | None = None,
    reconnect_seconds: float = 0.2,
    name: str | None = None,
) -> dict:
    """Serve a shard coordinator until told to stop; return run stats.

    Connects to ``cluster`` (retrying while no coordinator is
    listening), executes leases with local ``jobs``-process /
    ``batch``-lane parallelism, and reconnects after each completed
    sweep so one worker can serve a whole multi-sweep experiment run.
    ``once=True`` returns after the first completed sweep;
    ``idle_timeout`` bounds how long the worker keeps retrying with no
    coordinator answering (``None`` = forever, until a signal).
    Returns ``{"sweeps", "executed", "failures"}`` counters.

    Authentication and schema rejections raise
    :class:`~repro.errors.ShardError` immediately -- retrying a wrong
    token would never succeed.  Lost connections are retried: the
    coordinator requeues whatever this worker had leased.
    """
    if not isinstance(cluster, ClusterConfig):
        raise ShardError(f"cluster must be a ClusterConfig, got {cluster!r}")
    if idle_timeout is not None and not idle_timeout >= 0:
        raise ShardError(
            f"idle_timeout must be >= 0 or None, got {idle_timeout!r}"
        )
    worker_name = name if name else _default_name()
    # Resolve once against an unbounded task count: the clamp to the
    # actual lease size happens on the coordinator per grant.
    effective_jobs = resolve_jobs(jobs, 1 << 30)
    effective_batch = resolve_batch(batch)
    capacity = max(1, effective_jobs * effective_batch)
    stats = {"sweeps": 0, "executed": 0, "failures": 0}
    deadline = (
        None
        if idle_timeout is None
        else time.monotonic() + idle_timeout
    )
    while True:
        try:
            connection = socket.create_connection(
                (cluster.host, cluster.port)
            )
        except OSError:
            if deadline is not None and time.monotonic() >= deadline:
                return stats
            time.sleep(reconnect_seconds)
            continue
        executed_before = stats["executed"]
        completed = False
        try:
            rfile = connection.makefile("r", encoding="utf-8")
            wfile = connection.makefile("w", encoding="utf-8")
            write_lock = threading.Lock()
            write_message(
                wfile,
                {
                    "type": "hello",
                    "schema": SHARD_SCHEMA,
                    "token": cluster.token,
                    "worker": worker_name,
                    "capacity": capacity,
                },
                write_lock,
            )
            completed = _execute_session(
                rfile,
                wfile,
                write_lock,
                cluster,
                effective_jobs,
                effective_batch,
                capacity,
                stats,
            )
            try:
                write_message(wfile, {"type": "bye"}, write_lock)
            except OSError:
                pass
        except ShardError as error:
            reason = str(error)
            if "authentication" in reason or "schema" in reason or (
                "speaks" in reason
            ):
                raise
            # Anything else is a lost/garbled coordinator: reconnect.
        except (OSError, EOFError):
            pass  # coordinator went away mid-session: reconnect
        finally:
            try:
                connection.close()
            except OSError:
                pass
        if stats["executed"] > executed_before and deadline is not None:
            deadline = time.monotonic() + idle_timeout
        if completed:
            stats["sweeps"] += 1
            if once:
                return stats
            # The finished coordinator may linger; pause so the retry
            # loop does not spin against its "complete" answer.
            time.sleep(cluster.poll_seconds)
        else:
            time.sleep(reconnect_seconds)
        if deadline is not None and time.monotonic() >= deadline:
            return stats
