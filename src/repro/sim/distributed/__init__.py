"""Distributed sweep sharding: coordinator/worker over TCP.

Level 4 of the performance stack (see docs/performance.md): after
process-level ``jobs`` and lane-level ``batch``, this package fans a
sweep out across *machines*.  A :class:`ShardCoordinator` owns the
canonical spec order, the lease table, and the crash-safe checkpoint
journal; :func:`run_worker` turns any host that can import ``repro``
into capacity.  Results, traces, and metrics are bit-identical to a
single-machine :func:`repro.sim.parallel.run_outcomes` sweep -- the
wire codec, journal, and telemetry fold are the same code paths.

Most callers never touch this package directly: pass
``cluster=ClusterConfig(...)`` to ``run_suite``/``run_outcomes`` (or
``--cluster``/``serve-sweep``/``work`` on the CLIs) and the routing is
automatic.
"""

from repro.sim.distributed.coordinator import (
    ShardCoordinator,
    run_cluster_outcomes,
)
from repro.sim.distributed.protocol import (
    SHARD_SCHEMA,
    ClusterConfig,
    parse_endpoint,
)
from repro.sim.distributed.worker import run_worker

__all__ = [
    "SHARD_SCHEMA",
    "ClusterConfig",
    "ShardCoordinator",
    "parse_endpoint",
    "run_cluster_outcomes",
    "run_worker",
]
