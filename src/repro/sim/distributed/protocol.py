"""The ``repro.shard/v1`` wire protocol: framing, config, validation.

A distributed sweep is one coordinator (it owns the spec list and the
checkpoint journal) plus any number of workers (they own CPUs), talking
line-delimited JSON over TCP.  One message per line, UTF-8, ``repr``
-lossless floats via the shared :mod:`repro.sim.codec` payloads -- the
same encoding the checkpoint journal uses, so a result that crossed the
network is byte-for-byte the result a local sweep would have journaled.

Message flow (worker-initiated; the coordinator only ever replies):

========== ============================= ================================
direction  message                       reply
========== ============================= ================================
worker ->  ``hello`` (schema, token,     ``welcome`` (lease/heartbeat
           worker name, capacity)        intervals, telemetry switches)
                                         or ``error`` (then close)
worker ->  ``lease`` (max)               ``grant`` (state ``ok`` with
                                         leases / ``wait`` with a retry
                                         hint / ``complete``)
worker ->  ``result`` (index,            ``ack`` -- sent only after the
           fingerprint, attempt,         outcome is journaled and
           ok + result/telemetry         fsync'd, so a worker knows its
           payloads or failure)          work is durable
worker ->  ``heartbeat``                 *none* (fire-and-forget, so it
                                         can interleave with a pending
                                         request from another thread)
worker ->  ``bye``                       *none* (worker closes)
========== ============================= ================================

Leases are spec *fingerprints* (:func:`repro.sim.checkpoint
.spec_fingerprint`): content-addressed, so the worker re-derives the
fingerprint from the decoded spec and refuses a lease whose identity
does not match -- a corrupted spec can never silently run as the wrong
work.  Every lease carries a heartbeat-backed deadline; a worker that
stops heartbeating (killed, partitioned, wedged) forfeits its leases,
which requeue uncharged.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

from repro.errors import ConfigError, ShardError

#: Version tag exchanged in every ``hello``/``welcome``; bumped on any
#: change to the message format.  A coordinator and worker from
#: different protocol versions refuse each other explicitly rather than
#: misparse each other silently.
SHARD_SCHEMA = "repro.shard/v1"


@dataclass(frozen=True)
class ClusterConfig:
    """One distributed sweep's endpoint and liveness tuning.

    The same object configures both sides: the coordinator binds
    ``host:port`` (``port=0`` binds an ephemeral port -- useful for
    tests; :meth:`~repro.sim.distributed.ShardCoordinator.start`
    reports the real one), workers connect to it.  ``token`` is the
    shared secret workers must present in ``hello``; it is compared
    constant-time and never logged.

    ``lease_seconds`` is how long a lease survives without a heartbeat;
    ``heartbeat_seconds`` is how often workers send one (validated
    strictly smaller, or a healthy worker would flap); ``poll_seconds``
    is how long an idle worker waits between ``lease`` requests when
    the coordinator answered ``wait``.
    """

    host: str
    port: int
    token: str
    lease_seconds: float = 30.0
    heartbeat_seconds: float = 5.0
    poll_seconds: float = 0.1

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host.strip():
            raise ConfigError(f"host must be a non-empty string, got {self.host!r}")
        if (
            isinstance(self.port, bool)
            or not isinstance(self.port, int)
            or not 0 <= self.port <= 65535
        ):
            raise ConfigError(
                f"port must be an int in [0, 65535], got {self.port!r}"
            )
        if not isinstance(self.token, str) or not self.token:
            raise ConfigError("token must be a non-empty string")
        if any(ch in self.token for ch in "\r\n"):
            # Messages are line-framed; a token with a newline could
            # never round-trip through hello.
            raise ConfigError("token must not contain newlines")
        if not self.lease_seconds > 0:
            raise ConfigError(
                f"lease_seconds must be positive, got {self.lease_seconds!r}"
            )
        if not 0 < self.heartbeat_seconds < self.lease_seconds:
            raise ConfigError(
                f"heartbeat_seconds must be in (0, lease_seconds), got "
                f"{self.heartbeat_seconds!r} (lease_seconds="
                f"{self.lease_seconds!r})"
            )
        if not self.poll_seconds > 0:
            raise ConfigError(
                f"poll_seconds must be positive, got {self.poll_seconds!r}"
            )


def parse_endpoint(endpoint: str, *, allow_ephemeral: bool = False) -> tuple[str, int]:
    """Split a ``host:port`` CLI argument, validating both halves.

    ``allow_ephemeral`` admits port 0 (coordinator bind: "pick a free
    port"); a worker connecting to port 0 is always a mistake.
    """
    if not isinstance(endpoint, str) or ":" not in endpoint:
        raise ConfigError(
            f"endpoint must look like HOST:PORT, got {endpoint!r}"
        )
    host, _, port_text = endpoint.rpartition(":")
    if not host.strip():
        raise ConfigError(f"endpoint {endpoint!r} has an empty host")
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(
            f"endpoint {endpoint!r} has a non-integer port"
        ) from None
    low = 0 if allow_ephemeral else 1
    if not low <= port <= 65535:
        raise ConfigError(
            f"endpoint port must be in [{low}, 65535], got {port}"
        )
    return host, port


# -- line framing -------------------------------------------------------------
def write_message(
    wfile, message: dict, lock: threading.Lock | None = None
) -> None:
    """Write one message as a single JSON line (atomically under ``lock``).

    The lock matters on the worker, where the heartbeat thread and the
    request thread share one socket: interleaved partial lines would
    corrupt the stream.
    """
    line = json.dumps(message) + "\n"
    if lock is None:
        wfile.write(line)
        wfile.flush()
    else:
        with lock:
            wfile.write(line)
            wfile.flush()


def read_message(rfile) -> dict | None:
    """Read one message line; ``None`` on a clean EOF (peer went away)."""
    line = rfile.readline()
    if not line:
        return None
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ShardError(f"malformed shard message: {error}") from error
    if not isinstance(message, dict) or not isinstance(
        message.get("type"), str
    ):
        raise ShardError("shard message must be an object with a 'type'")
    return message


def expect_message(rfile, expected: str) -> dict:
    """Read one message, requiring the given type.

    An ``error`` message from the peer is surfaced as a
    :class:`ShardError` carrying its reason; EOF and any other type are
    protocol errors.
    """
    message = read_message(rfile)
    if message is None:
        raise ShardError(
            f"connection closed while waiting for {expected!r}"
        )
    if message["type"] == "error":
        raise ShardError(
            f"peer rejected the request: {message.get('reason', 'unknown')}"
        )
    if message["type"] != expected:
        raise ShardError(
            f"expected a {expected!r} message, got {message['type']!r}"
        )
    return message
