"""The shard coordinator: lease specs out, journal results, fold in order.

:class:`ShardCoordinator` is the distributed counterpart of
:class:`repro.sim.parallel._OutcomeRunner`: it owns the canonical spec
list, hands out leases over TCP (:mod:`.protocol`), and settles results
into the same :class:`~repro.sim.parallel.SpecOutcome` structures under
the same determinism contract --

* **Results** in spec order, each decoded through the shared codec
  (``repr``-lossless floats), so a distributed sweep's outcomes equal a
  local ``run_outcomes`` bit-for-bit.
* **Telemetry** folded at the end, in spec order, via
  :func:`~repro.sim.codec.fold_saved_telemetry` -- the identical path a
  checkpoint resume uses, so retained traces/events/metrics match the
  serial emit sequence exactly.  Coordinator orchestration diagnostics
  (``shard.*`` events) are, like ``sweep.*``, excluded from parity.
* **Durability** before acknowledgement: a worker's ``result`` is
  journaled (``repro.sweep/v1``, fsync'd) before the ``ack`` goes back,
  so a coordinator killed at any instant resumes from its checkpoint
  with nothing double-counted and at most one in-flight result re-run.

Failure model.  Liveness failures are *uncharged*: a worker that
disconnects or stops heartbeating forfeits its leases, which requeue at
the same attempt number (events ``shard.worker_lost`` /
``shard.lease_expired``).  Execution failures reported by a worker are
*charged* against the spec's :class:`~repro.sim.parallel.RetryPolicy`
budget, with the usual deterministic backoff (served as a
``not_before`` on the requeued lease rather than a coordinator-side
sleep) and ``shard.retry`` / ``shard.spec_failed`` events.  A stale
result for an already-settled spec is ignored -- every run is a pure
function of its spec, so the first settlement is as good as any.
"""

from __future__ import annotations

import hmac
import io
import socketserver
import threading
import time

from repro.errors import ShardError, SweepError
from repro.sim.checkpoint import (
    CheckpointJournal,
    load_checkpoint,
    spec_fingerprint,
)
from repro.sim.codec import fold_saved_telemetry, result_from_dict, spec_to_dict
from repro.sim.distributed.protocol import (
    SHARD_SCHEMA,
    ClusterConfig,
    read_message,
    write_message,
)
from repro.sim.parallel import (
    SpecFailure,
    SpecOutcome,
    SweepOptions,
    resolve_cache,
)
from repro.telemetry.core import ensure_telemetry


class _Lease:
    """One outstanding lease: who holds it, which attempt, until when."""

    __slots__ = ("worker", "attempt", "deadline")

    def __init__(self, worker: str, attempt: int, deadline: float) -> None:
        self.worker = worker
        self.attempt = attempt
        self.deadline = deadline


class ShardCoordinator:
    """Serve one sweep's specs to TCP workers; collect ordered outcomes.

    Lifecycle: :meth:`start` binds and begins accepting workers (it
    returns immediately; ``port=0`` in the :class:`ClusterConfig` binds
    an ephemeral port, readable afterwards as :attr:`port`);
    :meth:`wait` blocks until every spec is settled and returns the
    outcomes; :meth:`serve` is start-wait-shutdown in one call.
    :meth:`request_stop` (thread- and signal-safe) aborts the sweep:
    the journal keeps everything settled so far, and :meth:`wait`
    raises :class:`~repro.errors.ShardError` to signal the partial
    sweep -- a later coordinator resumes from the checkpoint.
    """

    def __init__(
        self,
        specs,
        cluster: ClusterConfig,
        options: SweepOptions | None = None,
        telemetry=None,
        cache=None,
    ) -> None:
        if not isinstance(cluster, ClusterConfig):
            raise ShardError(
                f"cluster must be a ClusterConfig, got {cluster!r}"
            )
        self.specs = list(specs)
        self.cluster = cluster
        self.options = options if options is not None else SweepOptions()
        self.sink = ensure_telemetry(telemetry)
        #: Cross-sweep result cache (:mod:`repro.sim.cache`), or None.
        #: Hits settle before the server starts -- never leased, never
        #: shipped over the wire; fresh worker results write back
        #: verbatim from their wire payloads.
        self.cache = resolve_cache(cache)
        self._cache_keys: list[str] | None = None
        n = len(self.specs)
        self.outcomes: list[SpecOutcome | None] = [None] * n
        #: Wire telemetry payloads of settled specs, folded at the end.
        self._telemetry_payloads: list[dict | None] = [None] * n
        #: Leases expire on the *coordinator's* monotonic clock only.
        self._fingerprints = [spec_fingerprint(spec) for spec in self.specs]
        self._spec_payloads = [spec_to_dict(spec) for spec in self.specs]
        self._lock = threading.Lock()
        self._settled = threading.Condition(self._lock)
        #: (index, attempt, not_before) triples awaiting a lease.
        self._pending: list[tuple[int, int, float]] = []
        self._leases: dict[int, _Lease] = {}
        self._journal: CheckpointJournal | None = None
        self._server: _ShardServer | None = None
        self._server_thread: threading.Thread | None = None
        self._stop_requested = False
        self._connection_seq = 0
        self._executed = 0
        self._resumed = 0
        self._cached = 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            return self.cluster.port
        return self._server.server_address[1]

    @property
    def complete(self) -> bool:
        """Whether every spec has settled (result or permanent failure)."""
        with self._lock:
            return self._complete_locked()

    def _complete_locked(self) -> bool:
        return all(outcome is not None for outcome in self.outcomes)

    def start(self) -> None:
        """Open the journal, resolve resumed specs, begin accepting."""
        if self._server is not None:
            raise ShardError("coordinator already started")
        self._open_journal()
        self._server = _ShardServer(
            (self.cluster.host, self.cluster.port), _ShardHandler, self
        )
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="shard-coordinator",
            daemon=True,
        )
        self._server_thread.start()

    def _open_journal(self) -> None:
        """Mirror ``_OutcomeRunner._open_journal``: resume by fingerprint."""
        options = self.options
        saved: dict[str, list[dict]] = {}
        if options.checkpoint_path is not None:
            if options.resume:
                saved = load_checkpoint(options.checkpoint_path)
            self._journal = CheckpointJournal.open(
                options.checkpoint_path, resume=options.resume
            )
        if self.cache is not None:
            from repro.sim.cache import cache_key

            self._cache_keys = [cache_key(spec) for spec in self.specs]
        now = time.monotonic()
        for index, spec in enumerate(self.specs):
            entries = saved.get(self._fingerprints[index])
            if entries:
                entry = entries.pop(0)
                self.outcomes[index] = SpecOutcome(
                    spec=spec,
                    index=index,
                    result=result_from_dict(entry["result"]),
                    attempts=entry.get("attempts", 1),
                    from_checkpoint=True,
                )
                self._telemetry_payloads[index] = entry.get("telemetry")
                self._resumed += 1
                if self.cache is not None:
                    self.cache.store_payload(
                        self._cache_keys[index],
                        spec,
                        entry["result"],
                        entry.get("telemetry"),
                        attempts=entry.get("attempts", 1),
                        fingerprint=self._fingerprints[index],
                    )
                continue
            if self.cache is not None:
                entry = self.cache.lookup(
                    self._cache_keys[index],
                    need_telemetry=self.sink.enabled,
                )
                if entry is not None:
                    # Settled before the server even starts: a cache
                    # hit is never leased to any worker.
                    self.outcomes[index] = SpecOutcome(
                        spec=spec,
                        index=index,
                        result=result_from_dict(entry["result"]),
                        attempts=entry.get("attempts", 1),
                        from_cache=True,
                    )
                    self._telemetry_payloads[index] = entry.get("telemetry")
                    self._cached += 1
                    if self._journal is not None:
                        self._journal.append_payload(
                            self._fingerprints[index],
                            spec,
                            entry.get("attempts", 1),
                            entry["result"],
                            entry.get("telemetry"),
                        )
                    continue
            self._pending.append((index, 0, now))
        if self._resumed and self.sink.enabled:
            self.sink.event(
                "shard.resume",
                -1,
                f"resumed {self._resumed} of {len(self.specs)} specs "
                f"from checkpoint",
                resumed=self._resumed,
                total=len(self.specs),
                path=str(options.checkpoint_path),
            )
        if self._cached and self.sink.enabled:
            self.sink.event(
                "cache.hit",
                -1,
                f"result cache replayed {self._cached} of "
                f"{len(self.specs)} specs",
                hits=self._cached,
                total=len(self.specs),
                path=str(self.cache.directory),
            )

    def wait(self) -> list[SpecOutcome]:
        """Block until the sweep settles; fold telemetry; return outcomes.

        Raises :class:`ShardError` if :meth:`request_stop` aborted the
        sweep first, and :class:`~repro.errors.SweepError` under
        ``options.strict`` when specs failed permanently.  Telemetry of
        every settled spec is folded (in spec order) even on the abort
        and KeyboardInterrupt paths, mirroring ``run_outcomes``.
        """
        if self._server is None:
            raise ShardError("coordinator not started")
        try:
            with self._settled:
                while not (
                    self._complete_locked() or self._stop_requested
                ):
                    self._expire_leases_locked(time.monotonic())
                    # Short waits double as the lease-expiry reaper tick.
                    self._settled.wait(
                        min(1.0, self.cluster.heartbeat_seconds)
                    )
        finally:
            self._shutdown()
            self._fold_telemetry()
        if not self.complete:
            raise ShardError(
                "coordinator stopped before the sweep completed "
                f"({sum(o is not None for o in self.outcomes)} of "
                f"{len(self.specs)} specs settled; the checkpoint "
                "journal, if any, holds them for resume)"
            )
        outcomes = list(self.outcomes)
        failures = [o for o in outcomes if o.error is not None]
        if failures and self.options.strict:
            detail = "; ".join(
                f"{o.spec.benchmark}/{o.spec.policy}[seed={o.spec.seed}] "
                f"{o.error}"
                for o in failures[:5]
            )
            if len(failures) > 5:
                detail += f"; ... {len(failures) - 5} more"
            raise SweepError(
                f"{len(failures)} of {len(self.specs)} specs failed "
                f"permanently: {detail}",
                failures,
            )
        return outcomes

    def serve(self) -> list[SpecOutcome]:
        """Run the whole sweep: :meth:`start`, :meth:`wait`, shut down."""
        self.start()
        return self.wait()

    def request_stop(self) -> None:
        """Abort the sweep (idempotent; safe from signal handlers)."""
        with self._settled:
            self._stop_requested = True
            self._settled.notify_all()

    def _shutdown(self) -> None:
        """Stop accepting, drop workers, close the journal (idempotent)."""
        server, self._server_thread = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self.cache is not None:
            self.cache.flush()

    def _fold_telemetry(self) -> None:
        """In-spec-order fold of settled specs' telemetry payloads."""
        if not self.sink.enabled:
            return
        for index in range(len(self.specs)):
            outcome = self.outcomes[index]
            if outcome is None or outcome.error is not None:
                continue
            fold_saved_telemetry(
                self.sink, self._telemetry_payloads[index]
            )
        if self.specs and self.complete:
            last = self.specs[-1]
            self.sink.set_context(last.benchmark, last.policy)

    # -- handler-side operations (all under the lock) ------------------------
    def _check_token(self, token) -> bool:
        return isinstance(token, str) and hmac.compare_digest(
            token, self.cluster.token
        )

    def _register_connection(self, name: str) -> str:
        with self._lock:
            self._connection_seq += 1
            return f"{name}#{self._connection_seq}"

    def _event(self, kind: str, index: int, message: str, **fields) -> None:
        """Emit one ``shard.*`` diagnostic (caller holds the lock)."""
        if self.sink.enabled:
            self.sink.event(kind, index, message, **fields)

    def _expire_leases_locked(self, now: float) -> None:
        expired = [
            index
            for index, lease in self._leases.items()
            if lease.deadline <= now
        ]
        for index in expired:
            lease = self._leases.pop(index)
            spec = self.specs[index]
            self._event(
                "shard.lease_expired",
                index,
                f"{spec.benchmark}/{spec.policy} lease expired on "
                f"{lease.worker}; requeueing",
                worker=lease.worker,
                attempt=lease.attempt + 1,
            )
            self._pending.append((index, lease.attempt, now))

    def grant(self, worker: str, max_leases: int) -> dict:
        """Lease up to ``max_leases`` ready specs to ``worker``.

        Returns the ``grant`` message: ``complete`` when every spec is
        settled, ``wait`` (with a retry hint) when nothing is ready
        right now, else ``ok`` with the leases.
        """
        max_leases = max(1, int(max_leases))
        now = time.monotonic()
        with self._lock:
            self._expire_leases_locked(now)
            if self._complete_locked() or self._stop_requested:
                return {"type": "grant", "state": "complete", "leases": []}
            ready: list[tuple[int, int]] = []
            waiting: list[tuple[int, int, float]] = []
            for index, attempt, not_before in self._pending:
                if not_before <= now and len(ready) < max_leases:
                    ready.append((index, attempt))
                else:
                    waiting.append((index, attempt, not_before))
            if not ready:
                delays = [
                    not_before - now for _, _, not_before in waiting
                ] or [self.cluster.poll_seconds]
                return {
                    "type": "grant",
                    "state": "wait",
                    "leases": [],
                    "retry_seconds": max(
                        min(min(delays), self.cluster.poll_seconds), 0.0
                    ),
                }
            self._pending = waiting
            deadline = now + self.cluster.lease_seconds
            leases = []
            for index, attempt in ready:
                self._leases[index] = _Lease(worker, attempt, deadline)
                leases.append(
                    {
                        "index": index,
                        "attempt": attempt,
                        "fingerprint": self._fingerprints[index],
                        "spec": self._spec_payloads[index],
                    }
                )
            return {"type": "grant", "state": "ok", "leases": leases}

    def heartbeat(self, worker: str) -> None:
        """Extend every lease the worker holds."""
        deadline = time.monotonic() + self.cluster.lease_seconds
        with self._lock:
            for lease in self._leases.values():
                if lease.worker == worker:
                    lease.deadline = deadline

    def drop_worker(self, worker: str) -> None:
        """Requeue (uncharged) every lease of a departed worker."""
        now = time.monotonic()
        with self._settled:
            lost = [
                index
                for index, lease in self._leases.items()
                if lease.worker == worker
            ]
            for index in lost:
                lease = self._leases.pop(index)
                self._pending.append((index, lease.attempt, now))
            if lost:
                self._event(
                    "shard.worker_lost",
                    lost[0],
                    f"worker {worker} disconnected with {len(lost)} "
                    f"lease(s); requeueing them",
                    worker=worker,
                    leases=len(lost),
                )
                self._settled.notify_all()

    def settle(self, worker: str, message: dict) -> None:
        """Apply one worker ``result`` message (journal before return).

        Raises :class:`ShardError` on malformed payloads -- the handler
        turns that into an ``error`` reply and drops the connection,
        and the lease requeues through :meth:`drop_worker`.
        """
        index = message.get("index")
        if not isinstance(index, int) or not 0 <= index < len(self.specs):
            raise ShardError(f"result has an invalid spec index {index!r}")
        if message.get("fingerprint") != self._fingerprints[index]:
            raise ShardError(
                f"result fingerprint does not match spec {index}"
            )
        spec = self.specs[index]
        ok = message.get("ok")
        if ok:
            # Decode (and thereby validate) before any state mutation.
            result_payload = message.get("result")
            try:
                result = result_from_dict(result_payload)
            except Exception as error:
                raise ShardError(
                    f"undecodable result for spec {index}: {error}"
                ) from error
        with self._settled:
            lease = self._leases.get(index)
            if lease is not None and lease.worker == worker:
                del self._leases[index]
            if self.outcomes[index] is not None:
                # A stale duplicate (its lease expired and another
                # worker finished first): results are pure functions
                # of the spec, so the first settlement stands.
                self._event(
                    "shard.duplicate",
                    index,
                    f"{spec.benchmark}/{spec.policy} already settled; "
                    f"ignoring duplicate from {worker}",
                    worker=worker,
                )
                self._settled.notify_all()
                return
            attempt = int(message.get("attempt", 0))
            # Drop any stray pending entry for this index first (a
            # lease may have expired and requeued before this late
            # result landed); a charged failure below re-queues its
            # own retry entry, which must survive.
            self._pending = [
                entry for entry in self._pending if entry[0] != index
            ]
            if ok:
                telemetry_payload = message.get("telemetry")
                if self._journal is not None:
                    self._journal.append_payload(
                        self._fingerprints[index],
                        spec,
                        attempt + 1,
                        result_payload,
                        telemetry_payload,
                    )
                self.outcomes[index] = SpecOutcome(
                    spec=spec,
                    index=index,
                    result=result,
                    attempts=attempt + 1,
                )
                self._telemetry_payloads[index] = telemetry_payload
                self._executed += 1
                if self.cache is not None:
                    # Write back verbatim from the wire payloads -- the
                    # worker already used the shared codec, so
                    # re-encoding would only risk drift.
                    self.cache.store_payload(
                        self._cache_keys[index],
                        spec,
                        result_payload,
                        telemetry_payload,
                        attempts=attempt + 1,
                        fingerprint=self._fingerprints[index],
                    )
            else:
                self._settle_failure_locked(
                    index, attempt, message.get("failure") or {}, worker
                )
            self._settled.notify_all()

    def _settle_failure_locked(
        self, index: int, attempt: int, failure: dict, worker: str
    ) -> None:
        """Charge one worker-reported failure against the retry budget."""
        spec = self.specs[index]
        retry = self.options.retry
        kind = str(failure.get("kind", "error"))
        exc_type = str(failure.get("exc_type", "Exception"))
        if attempt < retry.max_retries:
            self._event(
                "shard.retry",
                index,
                f"{spec.benchmark}/{spec.policy} attempt {attempt + 1} "
                f"failed ({kind}) on {worker}; retrying",
                failure_kind=kind,
                attempt=attempt + 1,
                exc_type=exc_type,
                worker=worker,
            )
            # Backoff without blocking the handler thread: the requeued
            # lease simply is not grantable until its not_before.
            not_before = time.monotonic() + retry.delay(attempt + 1)
            self._pending.append((index, attempt + 1, not_before))
            return
        self.outcomes[index] = SpecOutcome(
            spec=spec,
            index=index,
            error=SpecFailure(
                kind=kind,
                exc_type=exc_type,
                message=str(failure.get("message", "")),
                traceback=str(failure.get("traceback", "")),
            ),
            attempts=attempt + 1,
        )
        self._event(
            "shard.spec_failed",
            index,
            f"{spec.benchmark}/{spec.policy} failed permanently after "
            f"{attempt + 1} attempt(s) ({kind})",
            failure_kind=kind,
            attempts=attempt + 1,
            exc_type=exc_type,
        )

    def stats(self) -> dict:
        """Progress counters (settled/executed/resumed/cached/...)."""
        with self._lock:
            return {
                "total": len(self.specs),
                "settled": sum(o is not None for o in self.outcomes),
                "executed": self._executed,
                "resumed": self._resumed,
                "cached": self._cached,
                "leased": len(self._leases),
                "pending": len(self._pending),
            }


class _ShardServer(socketserver.ThreadingTCPServer):
    """One thread per worker connection; daemonic so aborts never hang."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, coordinator: ShardCoordinator):
        self.coordinator = coordinator
        super().__init__(address, handler)


class _ShardHandler(socketserver.StreamRequestHandler):
    """One worker connection: authenticate, then serve its requests."""

    def setup(self) -> None:
        # socketserver hands out binary streams; the protocol is
        # line-delimited UTF-8 text on both sides.
        super().setup()
        self.rfile = io.TextIOWrapper(self.rfile, encoding="utf-8")
        self.wfile = io.TextIOWrapper(self.wfile, encoding="utf-8")

    def finish(self) -> None:
        try:
            super().finish()
        except (BrokenPipeError, ConnectionResetError, OSError, ValueError):
            pass  # flushing to a vanished worker is not an error

    def handle(self) -> None:
        coordinator: ShardCoordinator = self.server.coordinator
        try:
            hello = read_message(self.rfile)
        except ShardError:
            return  # garbage before hello: drop silently
        if hello is None or hello["type"] != "hello":
            return
        if hello.get("schema") != SHARD_SCHEMA:
            write_message(
                self.wfile,
                {
                    "type": "error",
                    "reason": (
                        f"schema {hello.get('schema')!r} is not "
                        f"{SHARD_SCHEMA!r}"
                    ),
                },
            )
            return
        if not coordinator._check_token(hello.get("token")):
            write_message(
                self.wfile,
                {"type": "error", "reason": "authentication failed"},
            )
            return
        worker = coordinator._register_connection(
            str(hello.get("worker", "worker"))
        )
        sink = coordinator.sink
        write_message(
            self.wfile,
            {
                "type": "welcome",
                "schema": SHARD_SCHEMA,
                "lease_seconds": coordinator.cluster.lease_seconds,
                "heartbeat_seconds": coordinator.cluster.heartbeat_seconds,
                "telemetry": {
                    "enabled": sink.enabled,
                    "sample_latency": (
                        sink.config.sample_latency
                        if getattr(sink, "config", None) is not None
                        else True
                    ),
                },
            },
        )
        try:
            while True:
                try:
                    message = read_message(self.rfile)
                except ShardError:
                    break  # stream corrupted: drop the worker
                if message is None or message["type"] == "bye":
                    break
                kind = message["type"]
                if kind == "heartbeat":
                    coordinator.heartbeat(worker)
                elif kind == "lease":
                    write_message(
                        self.wfile,
                        coordinator.grant(
                            worker, message.get("max", 1)
                        ),
                    )
                elif kind == "result":
                    try:
                        coordinator.settle(worker, message)
                    except ShardError as error:
                        write_message(
                            self.wfile,
                            {"type": "error", "reason": str(error)},
                        )
                        break
                    write_message(self.wfile, {"type": "ack"})
                else:
                    write_message(
                        self.wfile,
                        {
                            "type": "error",
                            "reason": f"unknown message type {kind!r}",
                        },
                    )
                    break
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # worker vanished mid-reply; drop_worker requeues
        finally:
            coordinator.drop_worker(worker)


def run_cluster_outcomes(
    specs,
    cluster: ClusterConfig,
    options: SweepOptions | None = None,
    telemetry=None,
    cache=None,
) -> list[SpecOutcome]:
    """Serve ``specs`` to cluster workers; outcomes in spec order.

    The distributed analogue of
    :func:`repro.sim.parallel.run_outcomes`; see
    :class:`ShardCoordinator` for the lifecycle and failure model.
    ``cache`` is resolved exactly like the local orchestrator's
    (:func:`repro.sim.parallel.resolve_cache`): hits settle on the
    coordinator before any worker is granted a lease.
    """
    coordinator = ShardCoordinator(
        specs, cluster, options=options, telemetry=telemetry, cache=cache
    )
    return coordinator.serve()
