"""Structured DTM decision tracing: one record per controller sample.

A :class:`TraceRecord` is the paper's Figure-4 data point plus the
controller internals Section 3 reasons about: block temperatures, the
gated measurement the policy saw, the error and P/I/D terms, the
controller output before and after saturation, the quantized duty the
actuator applied, and the failsafe state.  Discrete occurrences --
failsafe transitions, injected faults, engine milestones -- are
:class:`TraceEvent` entries on a separate bounded stream so decimation
of the periodic samples never loses them.

Long runs cannot keep every sample.  :class:`TraceRecorder` offers two
bounded retention modes:

* ``"ring"`` -- keep the **last** ``capacity`` records (wraparound);
  right for post-mortems ("what led up to the emergency?");
* ``"decimate"`` -- keep the **whole run** at decreasing resolution:
  when the buffer fills, every other retained record is dropped and
  the keep-stride doubles, so the trace always spans the run with at
  most ``capacity`` records.  Decimation is a pure function of the
  emit sequence (no clocks, no randomness), so two identical runs
  retain identical records -- a property test asserts this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import TelemetryError

#: Retention strategies understood by :class:`TraceRecorder`.
TRACE_MODES = ("ring", "decimate")


@dataclass
class TraceRecord:
    """One DTM sampling instant, end-to-end through the control loop."""

    #: Measured-sample ordinal (warmup samples are not recorded).
    index: int
    #: Cycle count at the *end* of this sample (excludes warmup).
    cycle: int
    #: Benchmark / policy context (set once per run).
    benchmark: str = ""
    policy: str = ""
    # -- plant ---------------------------------------------------------------
    #: Hottest monitored block temperature fed to the manager [degC].
    sensed: float = math.nan
    #: End-of-sample hottest block temperature [degC].
    max_temp: float = math.nan
    #: End-of-sample per-block temperatures, floorplan order [degC].
    block_temps: tuple[float, ...] = ()
    #: Total chip power over the sample [W].
    chip_power: float = math.nan
    #: Achieved IPC over the sample.
    ipc: float = math.nan
    # -- controller ----------------------------------------------------------
    #: Measurement after sensor model + failsafe gating (NaN if withheld).
    measurement: float = math.nan
    #: setpoint - measurement (CT policies only).
    error: float = math.nan
    #: Proportional / integral / derivative contributions.
    p_term: float = math.nan
    i_term: float = math.nan
    d_term: float = math.nan
    #: Controller output before saturation to [0, 1].
    pre_saturation: float = math.nan
    #: Controller output after saturation (the commanded duty).
    post_saturation: float = math.nan
    #: Duty actually applied after actuator quantization (and faults).
    duty: float = math.nan
    #: Interrupt stall cycles charged to this sample.
    stall_cycles: int = 0
    # -- robustness layers ---------------------------------------------------
    #: Failsafe state name ("nominal" / "failsafe" / "degraded"), or
    #: "" when no guard is fitted.
    failsafe_state: str = ""
    #: Emergency / stress fraction of this sample (hottest block).
    emergency_fraction: float = 0.0
    stress_fraction: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serializable view (schema documented in docs/observability.md)."""
        return {
            "type": "sample",
            "index": self.index,
            "cycle": self.cycle,
            "benchmark": self.benchmark,
            "policy": self.policy,
            "sensed": self.sensed,
            "max_temp": self.max_temp,
            "block_temps": list(self.block_temps),
            "chip_power": self.chip_power,
            "ipc": self.ipc,
            "measurement": self.measurement,
            "error": self.error,
            "p_term": self.p_term,
            "i_term": self.i_term,
            "d_term": self.d_term,
            "pre_saturation": self.pre_saturation,
            "post_saturation": self.post_saturation,
            "duty": self.duty,
            "stall_cycles": self.stall_cycles,
            "failsafe_state": self.failsafe_state,
            "emergency_fraction": self.emergency_fraction,
            "stress_fraction": self.stress_fraction,
        }


@dataclass
class TraceEvent:
    """A discrete occurrence worth keeping regardless of decimation."""

    #: Event category: "failsafe_transition", "fault", "engine", ...
    kind: str
    #: Sample index at which the event fired.
    sample_index: int
    #: Short human-readable description.
    reason: str = ""
    #: Structured payload (state names, duties, fault channel, ...).
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable view."""
        return {
            "type": "event",
            "kind": self.kind,
            "sample_index": self.sample_index,
            "reason": self.reason,
            "data": dict(self.data),
        }


class EventLog:
    """A bounded, append-only list of :class:`TraceEvent` entries.

    Used standalone by components that must keep working without a
    shared recorder (the failsafe guard's compatibility event list) and
    as the event stream inside :class:`TraceRecorder`.  Drops silently
    once full -- an observability layer must never crash the loop it
    observes -- but counts what it dropped.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise TelemetryError("event log capacity must be positive")
        self.capacity = capacity
        self._events: list[TraceEvent] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def append(self, event: TraceEvent) -> None:
        """Record one event (silently dropped when full)."""
        if len(self._events) < self.capacity:
            self._events.append(event)
        else:
            self.dropped += 1

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """Events matching one category, oldest first."""
        return [event for event in self._events if event.kind == kind]

    def clear(self) -> None:
        """Forget all events (and the drop count)."""
        self._events.clear()
        self.dropped = 0


class TraceRecorder:
    """Bounded retention of per-sample records plus an event stream."""

    def __init__(
        self,
        capacity: int = 4096,
        mode: str = "decimate",
        event_capacity: int = 1024,
    ) -> None:
        if capacity < 2:
            raise TelemetryError("trace capacity must be at least 2")
        if mode not in TRACE_MODES:
            raise TelemetryError(
                f"unknown trace mode {mode!r}; expected one of {TRACE_MODES}"
            )
        self.capacity = capacity
        self.mode = mode
        self.events = EventLog(event_capacity)
        self._records: list[TraceRecord] = []
        #: Ring write head (``"ring"`` mode only).
        self._head = 0
        #: Current keep-stride over emit ordinals (``"decimate"`` only).
        self._stride = 1
        #: Total records ever emitted (pre-retention).
        self.emitted = 0

    # -- write side ----------------------------------------------------------
    def record(self, record: TraceRecord) -> None:
        """Retain one per-sample record under the configured policy."""
        ordinal = self.emitted
        self.emitted += 1
        if self.mode == "ring":
            if len(self._records) < self.capacity:
                self._records.append(record)
            else:
                self._records[self._head] = record
                self._head = (self._head + 1) % self.capacity
            return
        # Decimation: keep emit ordinals divisible by the stride; on
        # overflow, drop every other retained record and double the
        # stride.  Both steps depend only on the emit sequence.
        if ordinal % self._stride:
            return
        if len(self._records) >= self.capacity:
            self._records = self._records[::2]
            self._stride *= 2
            if ordinal % self._stride:
                return
        self._records.append(record)

    def event(
        self, kind: str, sample_index: int, reason: str = "", **data
    ) -> TraceEvent:
        """Append a :class:`TraceEvent` to the event stream."""
        event = TraceEvent(kind, sample_index, reason, data)
        self.events.append(event)
        return event

    # -- read side -----------------------------------------------------------
    @property
    def stride(self) -> int:
        """Current decimation stride (1 = every sample retained)."""
        return self._stride

    def records(self) -> list[TraceRecord]:
        """Retained records in emit order (unrolls the ring)."""
        if self.mode == "ring" and self._head:
            return self._records[self._head:] + self._records[: self._head]
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Forget all records and events; retention state restarts."""
        self._records.clear()
        self.events.clear()
        self._head = 0
        self._stride = 1
        self.emitted = 0
