"""The `Telemetry` facade and its zero-overhead null stand-in.

One :class:`Telemetry` instance observes one engine run (or, shared
across a sweep, many runs tagged with their benchmark/policy context).
It bundles the three collectors --

* :class:`~repro.telemetry.metrics.MetricsRegistry` (counters, gauges,
  fixed-bin histograms),
* :class:`~repro.telemetry.trace.TraceRecorder` (per-sample DTM
  decision records plus the discrete event stream),
* :class:`~repro.telemetry.profiler.Profiler` (span timings)

-- behind the narrow surface the engines call: ``span``, ``event``,
``record_control`` / ``record_sample``, ``set_context``.

**The default is off.**  Every instrumented component takes
``telemetry=None`` and substitutes :data:`NULL_TELEMETRY`, whose
``enabled`` flag is ``False`` and whose methods do nothing; hot loops
hoist ``telemetry.enabled`` into a local and skip record assembly
entirely, so simulation outputs stay bit-identical to the
un-instrumented library (asserted by tests) and the fast engine slows
by well under the 2% budget (asserted by a benchmark).
"""

from __future__ import annotations

import math

from repro.config import TelemetryConfig
from repro.telemetry.metrics import (
    DUTY_EDGES,
    LATENCY_EDGES,
    TEMPERATURE_EDGES,
    MetricsRegistry,
)
from repro.telemetry.profiler import NULL_PROFILER, Profiler, _NullSpan
from repro.telemetry.trace import TraceEvent, TraceRecord, TraceRecorder

_NULL_SPAN = _NullSpan()


class Telemetry:
    """Live observability for one engine run (or one shared sweep)."""

    enabled = True

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.metrics = MetricsRegistry()
        self.trace = TraceRecorder(
            capacity=self.config.trace_capacity,
            mode=self.config.trace_mode,
            event_capacity=self.config.event_capacity,
        )
        self.profiler = Profiler() if self.config.profile else NULL_PROFILER
        self.benchmark = ""
        self.policy = ""
        #: Free-form run metadata (block names, sample cycles, seed...)
        #: carried into exported trace headers.
        self.meta: dict = {}
        #: Controller-side fields staged by the DTM manager, merged
        #: into the next sample record by the engine.
        self._pending_control: dict | None = None
        # Pre-resolved metric handles (no dict lookup per sample).
        self._h_temp = self.metrics.histogram(
            "engine.max_temperature_c", TEMPERATURE_EDGES
        )
        self._h_duty = self.metrics.histogram("engine.duty", DUTY_EDGES)
        self._h_latency = self.metrics.histogram(
            "engine.sample_latency_seconds", LATENCY_EDGES
        )
        self._c_samples = self.metrics.counter("engine.samples")
        self._c_emergency = self.metrics.counter("engine.emergency_samples")
        self._c_stress = self.metrics.counter("engine.stress_samples")
        self._g_peak_temp = self.metrics.gauge("engine.peak_temperature_c")
        self._g_peak_power = self.metrics.gauge("engine.peak_chip_power_w")

    # -- context -------------------------------------------------------------
    def set_context(self, benchmark: str, policy: str) -> None:
        """Tag subsequent records with their run's benchmark/policy."""
        self.benchmark = benchmark
        self.policy = policy

    def span(self, name: str):
        """A profiler span (no-op when profiling is disabled)."""
        return self.profiler.span(name)

    def event(
        self, kind: str, sample_index: int, reason: str = "", **data
    ) -> TraceEvent:
        """Record a discrete event on the trace's event stream."""
        self._c_events_inc(kind)
        return self.trace.event(kind, sample_index, reason, **data)

    def _c_events_inc(self, kind: str) -> None:
        self.metrics.counter(f"events.{kind}").inc()

    # -- the per-sample path -------------------------------------------------
    def record_control(
        self,
        sample_index: int,
        measurement: float = math.nan,
        error: float = math.nan,
        p_term: float = math.nan,
        i_term: float = math.nan,
        d_term: float = math.nan,
        pre_saturation: float = math.nan,
        post_saturation: float = math.nan,
        duty: float = math.nan,
        stall_cycles: int = 0,
        failsafe_state: str = "",
    ) -> None:
        """Stage the controller-side half of the next sample record.

        Called by :class:`~repro.dtm.manager.DTMManager` from inside
        ``on_sample``; the engine completes and emits the record with
        the plant-side fields via :meth:`record_sample`.
        """
        self._pending_control = {
            "sample_index": sample_index,
            "measurement": measurement,
            "error": error,
            "p_term": p_term,
            "i_term": i_term,
            "d_term": d_term,
            "pre_saturation": pre_saturation,
            "post_saturation": post_saturation,
            "duty": duty,
            "stall_cycles": stall_cycles,
            "failsafe_state": failsafe_state,
        }

    def record_sample(
        self,
        index: int,
        cycle: int,
        sensed: float,
        max_temp: float,
        block_temps,
        chip_power: float,
        ipc: float,
        duty: float,
        emergency_fraction: float = 0.0,
        stress_fraction: float = 0.0,
        latency_seconds: float = math.nan,
    ) -> TraceRecord:
        """Complete and emit one per-sample trace record + metrics."""
        pending = self._pending_control
        self._pending_control = None
        record = TraceRecord(
            index=index,
            cycle=cycle,
            benchmark=self.benchmark,
            policy=self.policy,
            sensed=sensed,
            max_temp=max_temp,
            block_temps=tuple(float(t) for t in block_temps),
            chip_power=chip_power,
            ipc=ipc,
            duty=duty,
            emergency_fraction=emergency_fraction,
            stress_fraction=stress_fraction,
        )
        if pending is not None:
            record.measurement = pending["measurement"]
            record.error = pending["error"]
            record.p_term = pending["p_term"]
            record.i_term = pending["i_term"]
            record.d_term = pending["d_term"]
            record.pre_saturation = pending["pre_saturation"]
            record.post_saturation = pending["post_saturation"]
            record.stall_cycles = pending["stall_cycles"]
            record.failsafe_state = pending["failsafe_state"]
        self.trace.record(record)
        self._h_temp.observe(max_temp)
        self._h_duty.observe(duty)
        if not math.isnan(latency_seconds):
            self._h_latency.observe(latency_seconds)
        self._c_samples.inc()
        if emergency_fraction > 0.0:
            self._c_emergency.inc()
        if stress_fraction > 0.0:
            self._c_stress.inc()
        self._g_peak_temp.set(max_temp)
        self._g_peak_power.set(chip_power)
        return record

    # -- read side -----------------------------------------------------------
    def snapshot(self) -> dict:
        """Metrics + profiler snapshots (JSON-serializable)."""
        return {
            "benchmark": self.benchmark,
            "policy": self.policy,
            "metrics": self.metrics.snapshot(),
            "spans": self.profiler.snapshot(),
            "trace": {
                "retained": len(self.trace),
                "emitted": self.trace.emitted,
                "mode": self.trace.mode,
                "stride": self.trace.stride,
                "events": len(self.trace.events),
                "events_dropped": self.trace.events.dropped,
            },
        }

    def clear(self) -> None:
        """Reset every collector (metrics keep their registrations)."""
        self.trace.clear()
        self.profiler.clear()
        self._pending_control = None


class NullTelemetry:
    """The disabled default: every operation is a no-op.

    ``enabled`` is ``False`` so hot paths can skip record assembly with
    a single attribute test; the methods still exist so cold paths
    (event emission on a failsafe transition, span wrappers) can call
    through unconditionally.
    """

    enabled = False
    benchmark = ""
    policy = ""
    metrics = None
    trace = None
    meta = None
    profiler = NULL_PROFILER

    def set_context(self, benchmark: str, policy: str) -> None:
        """Ignored."""

    def span(self, name: str):
        """Always the shared no-op span."""
        return _NULL_SPAN

    def event(self, kind: str, sample_index: int, reason: str = "", **data):
        """Ignored; returns ``None``."""
        return None

    def record_control(self, sample_index: int, **fields) -> None:
        """Ignored."""

    def record_sample(self, *args, **kwargs):
        """Ignored; returns ``None``."""
        return None

    def snapshot(self) -> dict:
        """A fixed empty snapshot."""
        return {"metrics": {}, "spans": {}, "trace": {}}

    def clear(self) -> None:
        """Nothing to clear."""


#: The process-wide disabled-telemetry instance (stateless, shareable).
NULL_TELEMETRY = NullTelemetry()


def ensure_telemetry(telemetry) -> Telemetry | NullTelemetry:
    """Map ``None`` to :data:`NULL_TELEMETRY`; pass everything else through."""
    return NULL_TELEMETRY if telemetry is None else telemetry


def merge_telemetry(sink, source) -> None:
    """Fold one run's local telemetry into a shared sweep sink.

    Experiment drivers that need per-run trace isolation (e.g. to pull
    one policy's temperature series out cleanly) record into a local
    :class:`Telemetry` and fold it into the caller's shared sink
    afterwards: retained trace records and events are re-emitted onto
    the sink's recorder (subject to its own retention policy) and
    metrics merge under the registry's associative fold.  Span timings
    are per-process wall-clock and are deliberately not merged.

    No-op when ``sink`` is ``None`` or disabled.
    """
    sink = ensure_telemetry(sink)
    if not sink.enabled or sink is source:
        return
    for record in source.trace.records():
        sink.trace.record(record)
    for event in source.trace.events:
        sink.trace.events.append(event)
    sink.metrics.merge_snapshot(source.metrics.snapshot())
    if source.meta:
        sink.meta.update(source.meta)
