"""Span profiling with monotonic clocks.

``Profiler.span(name)`` is a re-entrant context manager measuring
wall-clock time on :func:`time.perf_counter` (monotonic, highest
resolution available).  Per span name it accumulates call count, total
/ min / max duration, and the *self* time (total minus time spent in
child spans), so nested instrumentation -- ``engine.run`` around
thousands of ``dtm.on_sample`` and ``thermal.advance`` spans --
apportions time correctly.

The disabled path matters more than the enabled one: every
instrumented call site in the engine checks a null object, so
:class:`NullProfiler` hands out one shared, stateless span whose
``__enter__`` / ``__exit__`` do nothing.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.errors import TelemetryError


class SpanStats:
    """Accumulated timing for one span name."""

    __slots__ = ("name", "count", "total", "self_total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        #: Total minus time attributed to child spans.
        self.self_total = 0.0
        self.min = math.inf
        self.max = 0.0

    @property
    def mean(self) -> float:
        """Mean duration per call [s] (``nan`` when never entered)."""
        return self.total / self.count if self.count else math.nan

    def snapshot(self) -> dict:
        """Plain-data view of this span's statistics."""
        return {
            "count": self.count,
            "total_seconds": self.total,
            "self_seconds": self.self_total,
            "mean_seconds": None if not self.count else self.mean,
            "min_seconds": None if not self.count else self.min,
            "max_seconds": self.max,
        }


class _Span:
    """One active (or reusable) timing scope."""

    __slots__ = ("_profiler", "_name", "_start", "_child_time")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0
        self._child_time = 0.0

    def __enter__(self) -> "_Span":
        self._child_time = 0.0
        self._profiler._stack.append(self)
        self._start = self._profiler._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = self._profiler._clock() - self._start
        profiler = self._profiler
        stack = profiler._stack
        stack.pop()
        if stack:
            stack[-1]._child_time += elapsed
        stats = profiler._stats.get(self._name)
        if stats is None:
            stats = profiler._stats[self._name] = SpanStats(self._name)
        stats.count += 1
        stats.total += elapsed
        stats.self_total += elapsed - self._child_time
        if elapsed < stats.min:
            stats.min = elapsed
        if elapsed > stats.max:
            stats.max = elapsed


class Profiler:
    """Collects :class:`SpanStats` per span name."""

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._stats: dict[str, SpanStats] = {}
        self._stack: list[_Span] = []

    def span(self, name: str) -> _Span:
        """A context manager timing one scope under ``name``."""
        return _Span(self, name)

    def time(self, name: str, fn: Callable, *args, **kwargs):
        """Call ``fn`` inside a span; returns its result."""
        with self.span(name):
            return fn(*args, **kwargs)

    # -- read side -----------------------------------------------------------
    def stats(self, name: str) -> SpanStats:
        """Statistics for one span name (raises if never entered)."""
        try:
            return self._stats[name]
        except KeyError:
            raise TelemetryError(f"no span named {name!r} was recorded") from None

    def names(self) -> tuple[str, ...]:
        """Recorded span names, sorted."""
        return tuple(sorted(self._stats))

    def snapshot(self) -> dict[str, dict]:
        """Plain-data view of every span, keyed by name."""
        return {
            name: stats.snapshot()
            for name, stats in sorted(self._stats.items())
        }

    def clear(self) -> None:
        """Forget all recorded spans."""
        self._stats.clear()
        self._stack.clear()

    def report(self) -> str:
        """Aligned text table of span statistics, slowest first."""
        if not self._stats:
            return "(no spans recorded)"
        rows = sorted(
            self._stats.values(), key=lambda s: s.total, reverse=True
        )
        width = max(len(stats.name) for stats in rows)
        lines = [
            f"{'span':<{width}}  {'calls':>8}  {'total':>10}  "
            f"{'self':>10}  {'mean':>10}"
        ]
        for stats in rows:
            lines.append(
                f"{stats.name:<{width}}  {stats.count:>8}  "
                f"{stats.total * 1e3:>8.2f}ms  "
                f"{stats.self_total * 1e3:>8.2f}ms  "
                f"{stats.mean * 1e6:>8.2f}us"
            )
        return "\n".join(lines)


class _NullSpan:
    """A do-nothing context manager, shared by every disabled call site."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullProfiler:
    """The no-op stand-in used when profiling is disabled."""

    enabled = False

    def span(self, name: str) -> _NullSpan:
        """Always the same stateless no-op span."""
        return _NULL_SPAN

    def time(self, name: str, fn: Callable, *args, **kwargs):
        """Call ``fn`` directly."""
        return fn(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        """No spans are ever recorded."""
        return ()

    def snapshot(self) -> dict[str, dict]:
        """Always empty."""
        return {}

    def clear(self) -> None:
        """Nothing to clear."""

    def report(self) -> str:
        """A fixed placeholder."""
        return "(profiling disabled)"


#: Shared no-op profiler instance.
NULL_PROFILER = NullProfiler()
