"""Offline trace analysis: summary stats, emergency episodes, hot samples.

Consumes the shared trace schema (live :class:`~repro.telemetry.trace.
TraceRecorder` contents or a parsed JSONL file) and produces the
numbers the paper's evaluation section is built from: how long each
thermal emergency lasted (Tables 7-8 count the *time*, this also
recovers the *episodes*), which samples ran hottest, and how the duty
command was distributed.  ``python -m repro trace <file>`` renders
:func:`render_report` over an exported trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.telemetry.trace import TraceEvent, TraceRecord

#: Default emergency threshold [degC] (ThermalConfig default).
DEFAULT_EMERGENCY_C = 102.0


@dataclass(frozen=True)
class Episode:
    """One contiguous run of samples in thermal emergency."""

    #: Sample index of the first emergency sample.
    start_index: int
    #: Sample index of the last emergency sample (inclusive).
    end_index: int
    #: Number of retained samples in the episode.
    samples: int
    #: Hottest temperature reached during the episode [degC].
    peak_temp: float
    #: Sum of per-sample emergency fractions (sub-sample time units).
    emergency_sample_equivalents: float

    @property
    def span(self) -> int:
        """Inclusive sample-index span of the episode."""
        return self.end_index - self.start_index + 1


def _in_emergency(record: TraceRecord, threshold: float) -> bool:
    if record.emergency_fraction > 0.0:
        return True
    return (
        not math.isnan(record.max_temp) and record.max_temp > threshold
    )


def emergency_episodes(
    records: Sequence[TraceRecord],
    threshold: float = DEFAULT_EMERGENCY_C,
) -> list[Episode]:
    """Group emergency samples into contiguous episodes.

    A sample is "in emergency" when its sub-sample emergency fraction
    is positive (the engine's closed-form accounting) or, lacking that,
    when its end-of-sample hottest temperature exceeds ``threshold``.
    Consecutive *retained* samples join one episode; on a decimated
    trace, episode sample counts are lower bounds at the retained
    resolution.
    """
    episodes: list[Episode] = []
    start = None
    last = None
    count = 0
    peak = -math.inf
    weight = 0.0
    for record in records:
        if _in_emergency(record, threshold):
            if start is None:
                start = record.index
                count = 0
                peak = -math.inf
                weight = 0.0
            last = record.index
            count += 1
            weight += record.emergency_fraction or 1.0
            if not math.isnan(record.max_temp):
                peak = max(peak, record.max_temp)
        elif start is not None:
            episodes.append(Episode(start, last, count, peak, weight))
            start = None
    if start is not None:
        episodes.append(Episode(start, last, count, peak, weight))
    return episodes


def hottest_samples(
    records: Sequence[TraceRecord], n: int = 10
) -> list[TraceRecord]:
    """The ``n`` hottest retained samples, hottest first."""
    keyed = [r for r in records if not math.isnan(r.max_temp)]
    keyed.sort(key=lambda r: r.max_temp, reverse=True)
    return keyed[: max(0, n)]


def _stats(values: list[float]) -> dict:
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return {"count": 0, "mean": None, "min": None, "max": None}
    return {
        "count": len(finite),
        "mean": sum(finite) / len(finite),
        "min": min(finite),
        "max": max(finite),
    }


def summarize(
    records: Sequence[TraceRecord],
    events: Sequence[TraceEvent] = (),
    threshold: float = DEFAULT_EMERGENCY_C,
) -> dict:
    """Headline numbers for one trace (plain data, render-agnostic)."""
    episodes = emergency_episodes(records, threshold)
    event_kinds: dict[str, int] = {}
    events_by_core: dict[int, dict[str, int]] = {}
    for event in events:
        event_kinds[event.kind] = event_kinds.get(event.kind, 0) + 1
        # Multicore traces tag per-core events with a "core" data
        # field; traces written before that field existed simply
        # produce an empty breakdown.
        core = (event.data or {}).get("core")
        if isinstance(core, int) and not isinstance(core, bool):
            per_core = events_by_core.setdefault(core, {})
            per_core[event.kind] = per_core.get(event.kind, 0) + 1
    # Sweep-orchestration breakdown: "sweep.*" events come from the
    # fault-tolerant orchestrator (retries, timeouts, resume skips),
    # "shard.*" events from the distributed coordinator (leases lost,
    # duplicates dropped), and "cache.*" events from the cross-sweep
    # result cache (hit/miss summaries).  Traces written before these
    # layers existed carry no such events and produce an empty
    # breakdown.
    orchestration: dict[str, dict[str, int]] = {}
    for kind, count in event_kinds.items():
        prefix, _, suffix = kind.partition(".")
        if prefix in ("sweep", "shard", "cache") and suffix:
            orchestration.setdefault(prefix, {})[suffix] = count
    saturated = sum(
        1
        for r in records
        if not math.isnan(r.post_saturation)
        and not math.isnan(r.pre_saturation)
        and r.pre_saturation != r.post_saturation
    )
    engaged = sum(1 for r in records if not math.isnan(r.duty) and r.duty < 1.0)
    return {
        "samples": len(records),
        "benchmark": records[0].benchmark if records else "",
        "policy": records[0].policy if records else "",
        "first_cycle": records[0].cycle if records else 0,
        "last_cycle": records[-1].cycle if records else 0,
        "temperature": _stats([r.max_temp for r in records]),
        "duty": _stats([r.duty for r in records]),
        "chip_power": _stats([r.chip_power for r in records]),
        "ipc": _stats([r.ipc for r in records]),
        "engaged_samples": engaged,
        "saturated_samples": saturated,
        "emergency_samples": sum(
            1 for r in records if _in_emergency(r, threshold)
        ),
        "emergency_episodes": len(episodes),
        "longest_episode_samples": max(
            (e.samples for e in episodes), default=0
        ),
        "events": event_kinds,
        "events_by_core": events_by_core,
        "orchestration": orchestration,
    }


def _fmt(value, spec: str = ".3f") -> str:
    if value is None:
        return "-"
    return format(value, spec)


def render_report(
    records: Sequence[TraceRecord],
    events: Sequence[TraceEvent] = (),
    threshold: float = DEFAULT_EMERGENCY_C,
    top: int = 10,
    meta: dict | None = None,
) -> str:
    """Human-readable trace report (summary, episodes, hottest samples)."""
    summary = summarize(records, events, threshold)
    lines = []
    title = "trace report"
    if summary["benchmark"] or summary["policy"]:
        title += f": {summary['benchmark']} / {summary['policy']}"
    lines.append(title)
    lines.append("=" * len(title))
    if meta:
        retained = meta.get("retained")
        emitted = meta.get("emitted")
        if retained is not None and emitted is not None:
            lines.append(
                f"retention:          {retained} of {emitted} samples "
                f"(mode={meta.get('mode', '?')}, "
                f"stride={meta.get('stride', '?')})"
            )
    lines.append(f"samples:            {summary['samples']}")
    lines.append(
        f"cycles covered:     {summary['first_cycle']:,} .. "
        f"{summary['last_cycle']:,}"
    )
    temp = summary["temperature"]
    lines.append(
        f"max temp (C):       mean {_fmt(temp['mean'])}  "
        f"min {_fmt(temp['min'])}  max {_fmt(temp['max'])}"
    )
    duty = summary["duty"]
    lines.append(
        f"duty:               mean {_fmt(duty['mean'])}  "
        f"min {_fmt(duty['min'])}  max {_fmt(duty['max'])}"
    )
    power = summary["chip_power"]
    lines.append(
        f"chip power (W):     mean {_fmt(power['mean'], '.1f')}  "
        f"max {_fmt(power['max'], '.1f')}"
    )
    lines.append(
        f"engaged samples:    {summary['engaged_samples']} "
        f"({summary['saturated_samples']} with saturated controller)"
    )
    lines.append(
        f"emergency:          {summary['emergency_samples']} samples in "
        f"{summary['emergency_episodes']} episode(s), longest "
        f"{summary['longest_episode_samples']} samples "
        f"(threshold {threshold:g} C)"
    )
    episodes = emergency_episodes(records, threshold)
    if episodes:
        lines.append("")
        lines.append("emergency episodes:")
        lines.append("  start    end     samples  peak (C)")
        for episode in episodes[:20]:
            lines.append(
                f"  {episode.start_index:<8} {episode.end_index:<7} "
                f"{episode.samples:<8} {episode.peak_temp:.3f}"
            )
        if len(episodes) > 20:
            lines.append(f"  ... and {len(episodes) - 20} more")
    hot = hottest_samples(records, top)
    if hot:
        lines.append("")
        lines.append(f"top {len(hot)} hottest samples:")
        lines.append("  index    max T (C)  duty   failsafe")
        for record in hot:
            lines.append(
                f"  {record.index:<8} {record.max_temp:<10.3f} "
                f"{_fmt(record.duty)}  {record.failsafe_state or '-'}"
            )
    if summary["events"]:
        lines.append("")
        lines.append("events:")
        for kind, count in sorted(summary["events"].items()):
            lines.append(f"  {kind}: {count}")
        if summary["events_by_core"]:
            lines.append("  per core:")
            for core in sorted(summary["events_by_core"]):
                kinds = summary["events_by_core"][core]
                detail = ", ".join(
                    f"{kind}={count}"
                    for kind, count in sorted(kinds.items())
                )
                lines.append(f"    core {core}: {detail}")
    if summary["orchestration"]:
        labels = {
            "sweep": "orchestrator",
            "shard": "distributed coordinator",
        }
        lines.append("")
        lines.append("sweep orchestration:")
        for prefix in sorted(summary["orchestration"]):
            kinds = summary["orchestration"][prefix]
            detail = ", ".join(
                f"{kind}={count}" for kind, count in sorted(kinds.items())
            )
            lines.append(
                f"  {labels.get(prefix, prefix)}: {detail}"
            )
    return "\n".join(lines)
