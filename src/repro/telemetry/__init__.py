"""``repro.telemetry``: the observability layer of the DTM engine.

Three collectors behind one opt-in facade (see docs/observability.md):

* **metrics** -- :class:`MetricsRegistry` of counters, gauges, and
  fixed-bin histograms; snapshots merge associatively so sweeps can
  aggregate across runs;
* **tracing** -- :class:`TraceRecorder`, one structured
  :class:`TraceRecord` per DTM sample (block temperatures, controller
  error and P/I/D terms, pre/post-saturation output, quantized duty,
  failsafe state) plus a decimation-proof :class:`TraceEvent` stream;
* **profiling** -- :class:`Profiler` spans over the engine's hot
  phases on monotonic clocks.

The default everywhere is :data:`NULL_TELEMETRY`, a null object whose
``enabled`` flag lets hot loops skip instrumentation with one local
boolean test -- disabled runs are bit-identical to the un-instrumented
library and inside the <2% fast-engine overhead budget.

Usage::

    from repro.telemetry import Telemetry
    from repro.sim.sweep import run_one

    telemetry = Telemetry()
    result = run_one("gcc", "pid", telemetry=telemetry)
    print(telemetry.metrics["engine.max_temperature_c"].mean)
    print(telemetry.profiler.report())
"""

from repro.config import TelemetryConfig
from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    ensure_telemetry,
    merge_telemetry,
)
from repro.telemetry.export import (
    TRACE_SCHEMA,
    TraceFile,
    event_from_dict,
    read_trace_jsonl,
    record_from_dict,
    write_metrics_json,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.telemetry.metrics import (
    DUTY_EDGES,
    LATENCY_EDGES,
    TEMPERATURE_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.telemetry.profiler import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    SpanStats,
)
from repro.telemetry.report import (
    Episode,
    emergency_episodes,
    hottest_samples,
    render_report,
    summarize,
)
from repro.telemetry.trace import (
    EventLog,
    TraceEvent,
    TraceRecord,
    TraceRecorder,
)

__all__ = [
    "Counter",
    "DUTY_EDGES",
    "Episode",
    "EventLog",
    "Gauge",
    "Histogram",
    "LATENCY_EDGES",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TELEMETRY",
    "NullProfiler",
    "NullTelemetry",
    "Profiler",
    "SpanStats",
    "TEMPERATURE_EDGES",
    "TRACE_SCHEMA",
    "Telemetry",
    "TelemetryConfig",
    "TraceEvent",
    "TraceFile",
    "TraceRecord",
    "TraceRecorder",
    "emergency_episodes",
    "ensure_telemetry",
    "event_from_dict",
    "record_from_dict",
    "hottest_samples",
    "merge_snapshots",
    "merge_telemetry",
    "read_trace_jsonl",
    "render_report",
    "summarize",
    "write_metrics_json",
    "write_trace_csv",
    "write_trace_jsonl",
]
