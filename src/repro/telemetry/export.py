"""Trace and metrics serialization: JSONL and CSV writers, JSONL reader.

The JSONL trace format is line-oriented so multi-gigabyte traces can
be streamed and ``grep``-ed:

* line 1 is a ``{"type": "meta", ...}`` header (schema version,
  benchmark/policy context, block names, retention statistics);
* each retained sample is a ``{"type": "sample", ...}`` line (see
  :meth:`~repro.telemetry.trace.TraceRecord.to_dict`);
* each discrete event is a ``{"type": "event", ...}`` line, written
  after the samples.

``NaN`` field values (e.g. P/I/D terms under a non-CT policy) are
written as JSON ``null`` and mapped back to ``nan`` on read, keeping
the files strictly valid JSON.  The CSV exporter flattens block
temperatures into one ``temp_<block>`` column each for
spreadsheet-style analysis.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.errors import TelemetryError
from repro.telemetry.trace import TraceEvent, TraceRecord, TraceRecorder

#: Version tag written into every trace header.
TRACE_SCHEMA = "repro.trace/v1"

#: TraceRecord float fields serialized with NaN -> null mapping.
_FLOAT_FIELDS = (
    "sensed",
    "max_temp",
    "chip_power",
    "ipc",
    "measurement",
    "error",
    "p_term",
    "i_term",
    "d_term",
    "pre_saturation",
    "post_saturation",
    "duty",
)


def _nan_to_none(value):
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def _none_to_nan(value) -> float:
    return math.nan if value is None else float(value)


def _sample_line(record: TraceRecord) -> str:
    data = record.to_dict()
    for key in _FLOAT_FIELDS:
        data[key] = _nan_to_none(data[key])
    data["block_temps"] = [_nan_to_none(t) for t in data["block_temps"]]
    return json.dumps(data, allow_nan=False)


def record_from_dict(data: dict) -> TraceRecord:
    """Rebuild a :class:`TraceRecord` from its ``to_dict`` form.

    Accepts both strict-JSON dicts (NaN written as ``null``, as in the
    JSONL trace files) and Python-JSON dicts (NaN preserved, as in the
    sweep checkpoint journal): ``None`` maps back to ``nan`` either
    way.  Shared by :func:`read_trace_jsonl` and
    :mod:`repro.sim.checkpoint`.
    """
    return TraceRecord(
        index=data["index"],
        cycle=data["cycle"],
        benchmark=data.get("benchmark", ""),
        policy=data.get("policy", ""),
        sensed=_none_to_nan(data.get("sensed")),
        max_temp=_none_to_nan(data.get("max_temp")),
        block_temps=tuple(
            _none_to_nan(t) for t in data.get("block_temps", ())
        ),
        chip_power=_none_to_nan(data.get("chip_power")),
        ipc=_none_to_nan(data.get("ipc")),
        measurement=_none_to_nan(data.get("measurement")),
        error=_none_to_nan(data.get("error")),
        p_term=_none_to_nan(data.get("p_term")),
        i_term=_none_to_nan(data.get("i_term")),
        d_term=_none_to_nan(data.get("d_term")),
        pre_saturation=_none_to_nan(data.get("pre_saturation")),
        post_saturation=_none_to_nan(data.get("post_saturation")),
        duty=_none_to_nan(data.get("duty")),
        stall_cycles=data.get("stall_cycles", 0),
        failsafe_state=data.get("failsafe_state", ""),
        emergency_fraction=data.get("emergency_fraction", 0.0),
        stress_fraction=data.get("stress_fraction", 0.0),
    )


def event_from_dict(data: dict) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from its ``to_dict`` form."""
    return TraceEvent(
        kind=data["kind"],
        sample_index=data["sample_index"],
        reason=data.get("reason", ""),
        data=data.get("data", {}),
    )


def write_trace_jsonl(
    recorder: TraceRecorder,
    path: str | Path,
    meta: dict | None = None,
) -> int:
    """Write a recorder's retained trace to ``path``; returns line count."""
    path = Path(path)
    header = {
        "type": "meta",
        "schema": TRACE_SCHEMA,
        "emitted": recorder.emitted,
        "retained": len(recorder),
        "mode": recorder.mode,
        "stride": recorder.stride,
        "events": len(recorder.events),
        "events_dropped": recorder.events.dropped,
    }
    if meta:
        header.update(meta)
    lines = [json.dumps(header, allow_nan=False)]
    lines.extend(_sample_line(record) for record in recorder.records())
    lines.extend(
        json.dumps(event.to_dict(), allow_nan=False)
        for event in recorder.events
    )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


def write_trace_csv(
    recorder: TraceRecorder,
    path: str | Path,
    block_names: Iterable[str] | None = None,
) -> int:
    """Write the retained samples as CSV; returns the row count.

    Events are not representable in a rectangular file and are omitted;
    use JSONL when the event stream matters.
    """
    path = Path(path)
    records = recorder.records()
    blocks = list(block_names) if block_names is not None else None
    if blocks is None and records and records[0].block_temps:
        blocks = [f"block{i}" for i in range(len(records[0].block_temps))]
    blocks = blocks or []
    scalar_fields = [
        "index",
        "cycle",
        "benchmark",
        "policy",
        "sensed",
        "max_temp",
        "chip_power",
        "ipc",
        "measurement",
        "error",
        "p_term",
        "i_term",
        "d_term",
        "pre_saturation",
        "post_saturation",
        "duty",
        "stall_cycles",
        "failsafe_state",
        "emergency_fraction",
        "stress_fraction",
    ]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(scalar_fields + [f"temp_{name}" for name in blocks])
        for record in records:
            row = [getattr(record, field) for field in scalar_fields]
            temps = list(record.block_temps)
            if len(temps) < len(blocks):
                temps += [math.nan] * (len(blocks) - len(temps))
            writer.writerow(row + temps[: len(blocks)])
    return len(records)


def write_metrics_json(snapshot: dict, path: str | Path) -> None:
    """Write a telemetry/registry snapshot as pretty-printed JSON."""

    def clean(value):
        if isinstance(value, dict):
            return {key: clean(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [clean(item) for item in value]
        if isinstance(value, float) and not math.isfinite(value):
            return None
        return value

    Path(path).write_text(
        json.dumps(clean(snapshot), indent=2, sort_keys=True, allow_nan=False)
        + "\n",
        encoding="utf-8",
    )


@dataclass
class TraceFile:
    """A parsed JSONL trace: header, samples, and events."""

    meta: dict
    records: list[TraceRecord]
    events: list[TraceEvent]


def read_trace_jsonl(path: str | Path) -> TraceFile:
    """Parse a trace written by :func:`write_trace_jsonl`."""
    path = Path(path)
    meta: dict = {}
    records: list[TraceRecord] = []
    events: list[TraceEvent] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                raise TelemetryError(
                    f"{path}:{line_number}: not valid JSON ({error})"
                ) from error
            kind = data.get("type")
            if kind == "meta":
                meta = data
            elif kind == "sample":
                records.append(record_from_dict(data))
            elif kind == "event":
                events.append(event_from_dict(data))
            else:
                raise TelemetryError(
                    f"{path}:{line_number}: unknown line type {kind!r}"
                )
    if not meta:
        raise TelemetryError(f"{path}: missing trace meta header")
    return TraceFile(meta=meta, records=records, events=events)
