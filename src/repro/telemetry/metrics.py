"""Metric primitives: counters, gauges, and fixed-bin histograms.

The registry is deliberately small and dependency-free: DTM sweeps run
thousands of short simulations, so metric updates must be cheap (plain
attribute arithmetic, no locks, no label cartesian products) and the
results must be **mergeable** -- a sweep worker snapshots its registry
and the driver folds the snapshots together.

Merge semantics (chosen so that merging is associative and
commutative, which a property test asserts):

* counters add;
* gauges keep the *extreme* value (``max`` by default, ``min`` for
  gauges created with ``prefer="min"``) -- peak semantics, the right
  fold for "hottest temperature seen" style gauges;
* histograms with identical bin edges add per-bin counts and combine
  their running ``sum`` / ``min`` / ``max``.

Histogram bin semantics are half-open on the left, ``[edge_i,
edge_{i+1})``: a value exactly on an interior edge lands in the bin
*starting* at that edge.  Values below ``edges[0]`` land in the
underflow bin; values at or above ``edges[-1]`` land in the overflow
bin.  ``NaN`` observations are counted separately and never binned.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Mapping

from repro.errors import TelemetryError

#: Default temperature bin edges [degC]: 1-K bins through the DTM
#: operating band, finer half-K bins across the trigger/emergency zone.
TEMPERATURE_EDGES: tuple[float, ...] = tuple(
    [80.0, 90.0, 95.0, 98.0, 99.0, 100.0]
    + [100.0 + 0.25 * i for i in range(1, 17)]  # 100.25 .. 104.0
    + [106.0, 110.0]
)

#: Default fetch-duty bin edges: one bin per eighth (the actuator's
#: quantization grid), offset so each quantized level is a bin start.
DUTY_EDGES: tuple[float, ...] = tuple(i / 8 for i in range(9))

#: Default per-sample latency bin edges [s] (log-spaced 1 us .. 100 ms).
LATENCY_EDGES: tuple[float, ...] = tuple(
    10.0 ** (-6 + 0.5 * i) for i in range(11)
)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def snapshot(self) -> dict:
        """Plain-data view of this counter."""
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value that also tracks its extreme.

    ``value`` is the last value set; ``extreme`` is the max (or min,
    for ``prefer="min"``) ever set.  Merging keeps the extreme, which
    is the only associative fold available without a global order on
    updates.
    """

    __slots__ = ("name", "prefer", "value", "extreme", "updates")

    kind = "gauge"

    def __init__(self, name: str, prefer: str = "max") -> None:
        if prefer not in ("max", "min"):
            raise TelemetryError("gauge prefer must be 'max' or 'min'")
        self.name = name
        self.prefer = prefer
        self.value: float | None = None
        self.extreme: float | None = None
        self.updates = 0

    def set(self, value: float) -> None:
        """Record a new reading."""
        self.value = value
        self.updates += 1
        if self.extreme is None:
            self.extreme = value
        elif self.prefer == "max":
            self.extreme = max(self.extreme, value)
        else:
            self.extreme = min(self.extreme, value)

    def snapshot(self) -> dict:
        """Plain-data view of this gauge."""
        return {
            "kind": self.kind,
            "value": self.value,
            "extreme": self.extreme,
            "prefer": self.prefer,
            "updates": self.updates,
        }


class Histogram:
    """A fixed-bin histogram with underflow/overflow bins.

    ``edges`` must be strictly increasing; ``len(edges) + 1`` bins are
    kept: ``(-inf, e0)``, ``[e0, e1)``, ..., ``[e_last, +inf)``.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum", "min", "max", "nan_count")

    kind = "histogram"

    def __init__(self, name: str, edges: Iterable[float]) -> None:
        edges = tuple(float(edge) for edge in edges)
        if len(edges) < 1:
            raise TelemetryError(f"histogram {name!r} needs at least one edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise TelemetryError(
                f"histogram {name!r} edges must be strictly increasing"
            )
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.nan_count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        if math.isnan(value):
            self.nan_count += 1
            return
        # bisect_right gives the half-open-left semantics: a value
        # exactly equal to edges[i] lands in the bin starting there.
        self.counts[bisect.bisect_right(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of all observations (``nan`` when empty)."""
        return self.sum / self.count if self.count else math.nan

    def bin_label(self, index: int) -> str:
        """Human-readable range of bin ``index``."""
        if index == 0:
            return f"(-inf, {self.edges[0]:g})"
        if index == len(self.edges):
            return f"[{self.edges[-1]:g}, +inf)"
        return f"[{self.edges[index - 1]:g}, {self.edges[index]:g})"

    def quantile(self, q: float) -> float:
        """Approximate quantile from bin boundaries (conservative: the
        upper edge of the bin containing the q-th observation)."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError("quantile must be in [0, 1]")
        if not self.count:
            return math.nan
        target = q * self.count
        running = 0
        for index, bucket in enumerate(self.counts):
            running += bucket
            if running >= target and bucket:
                if index >= len(self.edges):
                    return self.max
                return self.edges[index]
        return self.max

    def snapshot(self) -> dict:
        """Plain-data view of this histogram."""
        return {
            "kind": self.kind,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "nan_count": self.nan_count,
        }


class MetricsRegistry:
    """A flat namespace of metrics, snapshot- and merge-able."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- access --------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def names(self) -> tuple[str, ...]:
        """Registered metric names, sorted."""
        return tuple(sorted(self._metrics))

    def _register(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise TelemetryError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._register(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, prefer: str = "max") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._register(name, Gauge, lambda: Gauge(name, prefer))

    def histogram(self, name: str, edges: Iterable[float]) -> Histogram:
        """Get or create the histogram ``name`` with ``edges``."""
        metric = self._register(name, Histogram, lambda: Histogram(name, edges))
        if metric.edges != tuple(float(e) for e in edges):
            raise TelemetryError(
                f"histogram {name!r} already registered with different edges"
            )
        return metric

    # -- snapshot / merge ----------------------------------------------------
    def snapshot(self) -> dict[str, dict]:
        """Plain-data (JSON-serializable) view of every metric."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }

    def merge_snapshot(self, other: Mapping[str, dict]) -> None:
        """Fold another registry's :meth:`snapshot` into this registry."""
        for name, data in other.items():
            kind = data.get("kind")
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                gauge = self.gauge(name, prefer=data.get("prefer", "max"))
                extreme = data.get("extreme")
                if extreme is not None:
                    # Merging keeps the extreme; the merged "last value"
                    # is defined as the extreme too -- merged updates
                    # have no global ordering, and pinning value to the
                    # extreme keeps snapshot merging associative.
                    gauge.set(extreme)
                    gauge.value = gauge.extreme
                    gauge.updates += data.get("updates", 1) - 1
            elif kind == "histogram":
                histogram = self.histogram(name, data["edges"])
                counts = data["counts"]
                if len(counts) != len(histogram.counts):
                    raise TelemetryError(
                        f"histogram {name!r}: mismatched bin count in merge"
                    )
                for index, bucket in enumerate(counts):
                    histogram.counts[index] += bucket
                histogram.count += data["count"]
                histogram.sum += data["sum"]
                histogram.nan_count += data.get("nan_count", 0)
                if data.get("min") is not None:
                    histogram.min = min(histogram.min, data["min"])
                if data.get("max") is not None:
                    histogram.max = max(histogram.max, data["max"])
            else:
                raise TelemetryError(f"unknown metric kind {kind!r} for {name!r}")


def merge_snapshots(*snapshots: Mapping[str, dict]) -> dict[str, dict]:
    """Fold any number of registry snapshots into one (associative)."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()
