"""Wattch-style architecture-level power modeling (paper Section 5.1).

Per-cycle power per structure is computed from activity: each monitored
structure has a peak power (floorplan) and dissipates

    P = P_peak * (idle_fraction + (1 - idle_fraction) * utilization)

under Wattch's "cc3"-style conditional clocking (idle structures still
burn a fixed fraction of peak through clock and leakage).  Unit
capacitances (:mod:`repro.power.capacitance`) ground the peak-power
ratios in array geometry, including the column decoders the paper adds
to Wattch 1.02.
"""

from repro.power.capacitance import ArrayGeometry, array_access_energy
from repro.power.clock_gating import ClockGatingStyle
from repro.power.wattch import PowerModel

__all__ = [
    "ArrayGeometry",
    "ClockGatingStyle",
    "PowerModel",
    "array_access_energy",
]
