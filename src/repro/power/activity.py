"""Reference access rates: what counts as "utilization 1.0".

Per-structure maximum access rates (accesses per cycle) against which
the detailed core's :class:`~repro.uarch.stats.ActivityCounters` are
normalized.  The values correspond to a core sustaining near-peak
throughput on the Table 2 machine (see the pipeline module for which
events increment which counter).
"""

from __future__ import annotations

#: Accesses per cycle at which each structure is considered fully busy.
MAX_ACCESS_RATES: dict[str, float] = {
    "lsq": 3.0,       # dispatch + 2 memory ports issuing
    "window": 12.0,   # dispatch + wakeup/select + commit at high IPC
    "regfile": 12.0,  # 2 reads/issue + 1 write/commit at high IPC
    "bpred": 1.5,     # predict + update on branchy code
    "dcache": 2.0,    # 2 memory ports
    "int_exec": 3.5,  # 4 IntALU + 1 IntMult, realistically sustainable
    "fp_exec": 2.5,   # 2 FPALU + 1 FPMult, realistically sustainable
}
