"""Simplified Wattch-style capacitance model for array structures.

Wattch estimates per-access energy of RAM-like structures (register
files, branch predictor tables, caches, instruction window) from the
switched capacitance of the decoder, wordlines, bitlines, and sense
amplifiers.  The paper extends Wattch 1.02 with "modeling of the column
decoders on array structures like the branch predictor and caches"
(Section 5.1); the column-decoder term is therefore included
explicitly here.

The absolute numbers are process-dependent; what the rest of the
library consumes is the *per-access energy* ``E = 0.5 * C * Vdd^2``,
used in tests to check that the floorplan's relative peak powers are
consistent with structure geometry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.errors import ConfigError

# Effective per-unit capacitances for a 0.18 um process [F].  These
# follow the structure of Wattch's CACTI-derived constants: a wordline
# cell gate, a bitline cell drain, a decoder gate, a sense amp, and a
# precharge device.  The values are *effective* -- each lumps the bare
# device with the drivers, repeaters, and wiring that switch with it
# (roughly 25x the bare gate capacitance at this node), so that
# per-access energies land in the CACTI-typical hundreds-of-picojoule
# range and :func:`derived_peak_power` reproduces watt-scale structures.
_C_WORDLINE_PER_CELL = 45e-15
_C_BITLINE_PER_CELL = 55e-15
_C_DECODER_PER_GATE = 100e-15
_C_SENSE_AMP = 200e-15
_C_PRECHARGE_PER_COLUMN = 38e-15


@dataclass(frozen=True)
class ArrayGeometry:
    """Geometry of one RAM-like array."""

    name: str
    rows: int
    columns: int
    read_ports: int = 1
    write_ports: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.columns <= 0:
            raise ConfigError(f"{self.name}: rows and columns must be positive")
        if self.read_ports < 0 or self.write_ports < 0:
            raise ConfigError(f"{self.name}: port counts must be non-negative")

    @property
    def ports(self) -> int:
        """Total port count."""
        return self.read_ports + self.write_ports


def row_decoder_capacitance(rows: int) -> float:
    """Switched capacitance of the row decoder [F].

    A tree of ~log2(rows) gate levels, each driving rows/level gates;
    modeled as rows * C_gate plus the predecode fan-in.
    """
    if rows <= 0:
        raise ConfigError("rows must be positive")
    levels = max(1, math.ceil(math.log2(rows)))
    return _C_DECODER_PER_GATE * (rows + levels * 4)


def column_decoder_capacitance(columns: int) -> float:
    """Switched capacitance of the column decoder/mux [F].

    This is the term the paper adds to Wattch 1.02: selecting which
    columns reach the sense amps costs a decoder over the column count.
    """
    if columns <= 0:
        raise ConfigError("columns must be positive")
    levels = max(1, math.ceil(math.log2(columns)))
    return _C_DECODER_PER_GATE * (columns + levels * 4)


def array_switched_capacitance(geometry: ArrayGeometry) -> float:
    """Total capacitance switched by one access to the array [F].

    Ports multiply the wordline/bitline structures, as in a
    multi-ported register file.
    """
    ports = max(1, geometry.ports)
    wordline = _C_WORDLINE_PER_CELL * geometry.columns * ports
    bitline = _C_BITLINE_PER_CELL * geometry.rows * ports
    precharge = _C_PRECHARGE_PER_COLUMN * geometry.columns * ports
    sense = _C_SENSE_AMP * geometry.columns
    return (
        row_decoder_capacitance(geometry.rows)
        + column_decoder_capacitance(geometry.columns)
        + wordline
        + bitline
        + precharge
        + sense
    )


def array_access_energy(geometry: ArrayGeometry, vdd: float = units.VDD) -> float:
    """Energy of one access, ``0.5 * C * Vdd^2`` [J]."""
    if vdd <= 0:
        raise ConfigError("vdd must be positive")
    return 0.5 * array_switched_capacitance(geometry) * vdd * vdd


def derived_peak_power(
    geometry: ArrayGeometry,
    max_accesses_per_cycle: float,
    clock_hz: float = units.CLOCK_HZ,
    vdd: float = units.VDD,
) -> float:
    """Peak power implied by the capacitance model [W].

    ``P = E_access * accesses/cycle * f`` -- the Wattch bottom-up
    estimate.  The floorplan's calibrated peak powers are the canonical
    values; this derivation grounds their *ratios* in geometry (tests
    check the orderings agree).
    """
    if max_accesses_per_cycle <= 0:
        raise ConfigError("max_accesses_per_cycle must be positive")
    return array_access_energy(geometry, vdd) * max_accesses_per_cycle * clock_hz


#: Representative geometries of the paper's monitored structures
#: (sizes follow Table 2: 80-entry RUU, 40-entry LSQ, 4K-entry
#: predictor tables, 64 KB D-cache with 32 B lines).
STRUCTURE_GEOMETRIES: dict[str, ArrayGeometry] = {
    "lsq": ArrayGeometry("lsq", rows=40, columns=64, read_ports=2, write_ports=2),
    "window": ArrayGeometry("window", rows=80, columns=128, read_ports=6, write_ports=4),
    "regfile": ArrayGeometry("regfile", rows=80, columns=64, read_ports=12, write_ports=6),
    "bpred": ArrayGeometry("bpred", rows=4096, columns=2, read_ports=1, write_ports=1),
    "dcache": ArrayGeometry("dcache", rows=1024, columns=256, read_ports=2, write_ports=2),
    "int_exec": ArrayGeometry("int_exec", rows=64, columns=64, read_ports=4, write_ports=4),
    "fp_exec": ArrayGeometry("fp_exec", rows=64, columns=80, read_ports=3, write_ports=3),
}
