"""Temperature-dependent leakage power (extension).

The paper's power model is dynamic-only (leakage was folded into the
CC3 idle fraction), but it cites contemporary leakage-control work
(Wong et al.) and leakage is the canonical coupling that makes thermal
management *harder*: leakage grows exponentially with temperature, so
heat makes more heat.  This module adds

    P_leak(T) = fraction * P_peak * 2^((T - T_ref) / doubling)

per block, plus the analysis of its consequences:

* **runaway temperature** -- where the leakage slope dP/dT exceeds the
  block's conduction slope 1/R, beyond which no thermal equilibrium
  exists;
* **authority limit** -- the floor temperature a fully-throttled block
  settles at (idle dynamic + leakage); once that floor crosses the
  emergency threshold, *no* fetch-side DTM policy can prevent
  emergencies.  Experiment E2 sweeps this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.thermal.floorplan import Block


@dataclass(frozen=True)
class LeakageModel:
    """Exponential-in-temperature leakage, per block."""

    #: Leakage at the reference temperature, as a fraction of peak power.
    fraction_of_peak: float = 0.10
    #: Temperature at which the fraction is specified [degC].
    reference_temperature: float = 100.0
    #: Temperature rise that doubles leakage [K].
    doubling_interval: float = 12.0

    def __post_init__(self) -> None:
        if self.fraction_of_peak < 0:
            raise ConfigError("fraction_of_peak must be non-negative")
        if self.doubling_interval <= 0:
            raise ConfigError("doubling_interval must be positive")

    def power(self, peak_powers: np.ndarray, temperatures: np.ndarray) -> np.ndarray:
        """Per-block leakage power [W] at the given temperatures."""
        peak_powers = np.asarray(peak_powers, dtype=float)
        temperatures = np.asarray(temperatures, dtype=float)
        exponent = (temperatures - self.reference_temperature) / self.doubling_interval
        return self.fraction_of_peak * peak_powers * np.exp2(exponent)

    def slope(self, peak_power: float, temperature: float) -> float:
        """dP_leak/dT of one block [W/K] at a temperature."""
        scale = math.log(2.0) / self.doubling_interval
        return float(self.power(np.array([peak_power]), np.array([temperature]))[0]) * scale

    def runaway_temperature(self, block: Block) -> float:
        """Temperature beyond which the block has no thermal equilibrium.

        Equilibrium requires the conduction slope ``1/R`` to exceed the
        leakage slope; solving ``slope(T*) = 1/R`` gives

            T* = T_ref + d * log2( d / (ln2 * f * P_peak * R) ).

        Returns ``inf`` when leakage is zero.
        """
        if self.fraction_of_peak == 0:
            return float("inf")
        critical = self.doubling_interval / (
            math.log(2.0) * self.fraction_of_peak * block.peak_power * block.resistance
        )
        return self.reference_temperature + self.doubling_interval * math.log2(critical)

    def throttled_floor_temperature(
        self,
        block: Block,
        heatsink_temperature: float,
        idle_fraction: float = 0.15,
        iterations: int = 100,
    ) -> float:
        """Equilibrium temperature of a fully-throttled block.

        With fetch fully off, the block still dissipates idle dynamic
        power plus leakage; the equilibrium solves the fixed point
        ``T = T_sink + R * (P_idle + P_leak(T))``.  If the fixed-point
        iteration diverges the block is in runaway even when throttled
        and ``inf`` is returned.
        """
        idle_power = idle_fraction * block.peak_power
        temperature = heatsink_temperature
        for _ in range(iterations):
            leak = float(
                self.power(
                    np.array([block.peak_power]), np.array([temperature])
                )[0]
            )
            updated = heatsink_temperature + block.resistance * (idle_power + leak)
            if updated > heatsink_temperature + 50.0:
                return float("inf")
            if abs(updated - temperature) < 1e-9:
                return updated
            temperature = updated
        return temperature
