"""Conditional clocking styles, after Wattch's cc0-cc3.

Wattch models how aggressively unused structures are clock-gated:

* **CC0** -- no gating: every structure burns peak power every cycle.
* **CC1** -- gate unused structures entirely (idle power = 0), used
  structures burn full power regardless of how many ports are active.
* **CC2** -- like CC1 but power scales linearly with the number of
  active ports.
* **CC3** -- like CC2 but idle structures still burn a fixed fraction
  of peak (clock tree + leakage); this is Wattch's most realistic
  style and the library default.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError


class ClockGatingStyle(enum.Enum):
    """Which conditional-clocking idealization to apply."""

    CC0 = "cc0"
    CC1 = "cc1"
    CC2 = "cc2"
    CC3 = "cc3"


#: Idle power as a fraction of peak under CC3 (Wattch used 10 %; we use
#: 15 % to also fold in leakage at 0.18 um -- see DESIGN.md calibration).
CC3_IDLE_FRACTION = 0.15


def effective_power(
    peak_power: float,
    utilization: float,
    style: ClockGatingStyle = ClockGatingStyle.CC3,
    idle_fraction: float = CC3_IDLE_FRACTION,
) -> float:
    """Power of one structure this cycle given its utilization.

    ``utilization`` is active ports / total ports in [0, 1].
    """
    if peak_power < 0:
        raise ConfigError("peak power must be non-negative")
    if not 0.0 <= utilization <= 1.0:
        raise ConfigError(f"utilization must be in [0, 1], got {utilization}")
    if not 0.0 <= idle_fraction < 1.0:
        raise ConfigError("idle_fraction must be in [0, 1)")
    if style is ClockGatingStyle.CC0:
        return peak_power
    if style is ClockGatingStyle.CC1:
        return peak_power if utilization > 0 else 0.0
    if style is ClockGatingStyle.CC2:
        return peak_power * utilization
    return peak_power * (idle_fraction + (1.0 - idle_fraction) * utilization)
