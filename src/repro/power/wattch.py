"""The per-cycle power model (Wattch stand-in).

``PowerModel`` converts per-structure utilization (either measured by
the detailed core's activity counters or specified directly by a
workload profile's activity view) into per-structure power, applying a
conditional-clocking style, and adds the power of the unmonitored rest
of the chip (I-cache, L2, clock tree, buses) for chip-wide totals.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.power.activity import MAX_ACCESS_RATES
from repro.power.clock_gating import (
    CC3_IDLE_FRACTION,
    ClockGatingStyle,
    effective_power,
)
from repro.thermal.floorplan import Floorplan


class PowerModel:
    """Utilization -> power, per structure and chip-wide."""

    def __init__(
        self,
        floorplan: Floorplan,
        gating: ClockGatingStyle = ClockGatingStyle.CC3,
        idle_fraction: float = CC3_IDLE_FRACTION,
    ) -> None:
        if not 0.0 <= idle_fraction < 1.0:
            raise ConfigError("idle_fraction must be in [0, 1)")
        self.floorplan = floorplan
        self.gating = gating
        self.idle_fraction = idle_fraction
        self._peaks = np.array(
            [block.peak_power for block in floorplan.blocks], dtype=float
        )
        # Peaks never change after construction, so the no-copy view
        # can be built once and handed out forever.
        self._peaks_readonly = self._peaks.view()
        self._peaks_readonly.flags.writeable = False

    # -- vectorized path (fast engine) ------------------------------------
    def block_powers(self, utilization: np.ndarray) -> np.ndarray:
        """Per-block power [W] from a utilization vector in floorplan order."""
        utilization = np.clip(np.asarray(utilization, dtype=float), 0.0, 1.0)
        if utilization.shape != self._peaks.shape:
            raise ConfigError(
                f"expected {self._peaks.shape[0]} utilizations, got {utilization.shape}"
            )
        if self.gating is ClockGatingStyle.CC0:
            return self._peaks.copy()
        if self.gating is ClockGatingStyle.CC1:
            return np.where(utilization > 0, self._peaks, 0.0)
        if self.gating is ClockGatingStyle.CC2:
            return self._peaks * utilization
        idle = self.idle_fraction
        return self._peaks * (idle + (1.0 - idle) * utilization)

    def unmonitored_power(self, mean_utilization: float) -> float:
        """Power of the rest of the chip given average core utilization."""
        mean_utilization = min(1.0, max(0.0, mean_utilization))
        return effective_power(
            self.floorplan.unmonitored_peak_power,
            mean_utilization,
            self.gating,
            self.idle_fraction,
        )

    def chip_power(self, utilization: np.ndarray) -> float:
        """Total chip power [W] for one utilization vector."""
        blocks = self.block_powers(utilization)
        mean = float(np.mean(np.clip(utilization, 0.0, 1.0)))
        return float(blocks.sum()) + self.unmonitored_power(mean)

    # -- counter path (detailed core) -----------------------------------------
    def utilization_from_counts(self, counts: dict[str, float]) -> np.ndarray:
        """Per-block utilization vector from one cycle's access counts."""
        return np.array(
            [
                min(1.0, counts.get(name, 0.0) / MAX_ACCESS_RATES[name])
                for name in self.floorplan.names
            ],
            dtype=float,
        )

    def powers_from_counts(self, counts: dict[str, float]) -> np.ndarray:
        """Per-block power from one cycle's raw access counts."""
        return self.block_powers(self.utilization_from_counts(counts))

    @property
    def peaks(self) -> np.ndarray:
        """Per-block peak powers [W] in floorplan order (copy)."""
        return self._peaks.copy()

    @property
    def peaks_view(self) -> np.ndarray:
        """Per-block peak powers as a cached **read-only view**.

        The fast engine's leakage path reads the peaks every sample;
        this skips the defensive per-read copy of :attr:`peaks` while
        still making external mutation impossible (the view is not
        writeable, regression-tested).
        """
        return self._peaks_readonly

    @property
    def peak_chip_power(self) -> float:
        """Chip power with every structure fully busy [W]."""
        return float(self._peaks.sum()) + self.floorplan.unmonitored_peak_power

    @property
    def min_chip_power(self) -> float:
        """Chip power with everything idle under the gating style [W]."""
        zeros = np.zeros_like(self._peaks)
        return self.chip_power(zeros)
