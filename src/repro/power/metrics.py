"""Power accounting: breakdowns and energy metrics (Wattch-style).

Wattch's signature output is *where the power goes*: per-structure
dissipation split into activity-driven (dynamic) and idle (clock tree
/ leakage floor) components.  Under the CC3 model the split is exact:

    P = P_peak * (idle + (1 - idle) * u)
      = P_peak * idle            (idle component, always burning)
      + P_peak * (1 - idle) * u  (dynamic component).

``power_breakdown`` recovers both components from a recorded run
history; ``energy_summary`` compares total energy and energy per
instruction across runs (the other side of the DTM trade: throttling
cuts power but stretches runtime while the idle floor keeps burning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.power.clock_gating import CC3_IDLE_FRACTION
from repro.sim.results import History, RunResult
from repro.thermal.floorplan import Floorplan


@dataclass(frozen=True)
class StructureBreakdown:
    """Mean power split for one structure over a run."""

    name: str
    mean_total_w: float
    mean_dynamic_w: float
    mean_idle_w: float
    fraction_of_monitored: float

    @property
    def dynamic_share(self) -> float:
        """Dynamic component as a fraction of the structure's total."""
        if not self.mean_total_w:
            return 0.0
        return self.mean_dynamic_w / self.mean_total_w


def power_breakdown(
    history: History,
    floorplan: Floorplan,
    idle_fraction: float = CC3_IDLE_FRACTION,
) -> list[StructureBreakdown]:
    """Per-structure dynamic/idle power split from a recorded history."""
    if not 0.0 <= idle_fraction < 1.0:
        raise ConfigError("idle_fraction must be in [0, 1)")
    mean_powers = history.block_powers.mean(axis=0)
    peaks = np.array([block.peak_power for block in floorplan.blocks])
    idle_powers = peaks * idle_fraction
    dynamic = np.maximum(0.0, mean_powers - idle_powers)
    total_monitored = float(mean_powers.sum())
    result = []
    for index, block in enumerate(floorplan.blocks):
        result.append(
            StructureBreakdown(
                name=block.name,
                mean_total_w=float(mean_powers[index]),
                mean_dynamic_w=float(dynamic[index]),
                mean_idle_w=float(min(idle_powers[index], mean_powers[index])),
                fraction_of_monitored=(
                    float(mean_powers[index]) / total_monitored
                    if total_monitored
                    else 0.0
                ),
            )
        )
    return result


@dataclass(frozen=True)
class EnergyComparison:
    """Energy metrics of one run, relative to an unmanaged baseline."""

    policy: str
    energy_joules: float
    energy_per_instruction_nj: float
    mean_power_w: float
    relative_epi: float


def energy_summary(
    runs: dict[str, RunResult], baseline_policy: str = "none"
) -> list[EnergyComparison]:
    """Energy and EPI per policy, normalized to the baseline run.

    ``runs`` maps policy name -> RunResult for the same benchmark.
    """
    if baseline_policy not in runs:
        raise ConfigError(f"baseline policy {baseline_policy!r} missing")
    baseline_epi = runs[baseline_policy].energy_per_instruction
    result = []
    for policy, run in runs.items():
        epi = run.energy_per_instruction
        result.append(
            EnergyComparison(
                policy=policy,
                energy_joules=run.energy_joules,
                energy_per_instruction_nj=epi * 1e9,
                mean_power_w=run.mean_chip_power,
                relative_epi=epi / baseline_epi if baseline_epi else 0.0,
            )
        )
    return result
