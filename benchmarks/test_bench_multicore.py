"""Multicore thermal-model throughput guard: vectorize or lose.

The point of ``MulticoreThermalModel``'s stacked ``(n_cores, n_blocks)``
state is that advancing N cores costs one batched numpy expression
instead of N single-core updates with N rounds of numpy dispatch
overhead.  This guard measures both sides at N = 16 and
``coupling_scale=0`` -- where the two computations are *bitwise
identical* (``tests/test_multicore_thermal.py`` proves it), so the
comparison is pure implementation, no physics difference.

The asserted bound -- vectorized at least 3x faster than 16 sequential
``LumpedThermalModel.advance`` calls -- is deliberately loose; the
typical measured speedup is well above it.  Timing is best-of-repeats
``perf_counter`` over many advance calls, so scheduler noise cancels.

Needs no pytest plugins; CI runs it in the multicore smoke job:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_multicore.py -q
"""

import time

import numpy as np

from repro.multicore.floorplan import MulticoreFloorplan
from repro.multicore.thermal import MulticoreThermalModel
from repro.thermal.lumped import LumpedThermalModel

#: Core count for the comparison -- the experiment driver's largest N.
N_CORES = 16

#: Advance calls per timed pass (one call == one sampling interval).
STEPS = 400

#: Cycles per advance call (the DTM sampling interval).
CYCLES = 1_000

#: Required speedup of the stacked update over N sequential updates.
SPEEDUP_FLOOR = 3.0


def _power_schedule(shape: tuple[int, int]) -> np.ndarray:
    """A deterministic per-step power table shared by both sides."""
    rng = np.random.default_rng(42)
    return rng.uniform(0.0, 10.0, size=(STEPS, *shape))


def _time_vectorized(powers: np.ndarray, repeats: int = 5) -> float:
    tiling = MulticoreFloorplan.tile(n_cores=N_CORES, coupling_scale=0.0)
    model = MulticoreThermalModel(tiling)
    best = float("inf")
    for _ in range(repeats):
        model.reset()
        start = time.perf_counter()
        for step in range(STEPS):
            model.advance(powers[step], CYCLES)
        best = min(best, time.perf_counter() - start)
    return best


def _time_sequential(powers: np.ndarray, repeats: int = 5) -> float:
    floorplan = MulticoreFloorplan.tile(n_cores=N_CORES).core
    models = [LumpedThermalModel(floorplan) for _ in range(N_CORES)]
    best = float("inf")
    for _ in range(repeats):
        for model in models:
            model.reset()
        start = time.perf_counter()
        for step in range(STEPS):
            for core, model in enumerate(models):
                model.advance(powers[step, core], CYCLES)
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_advance_beats_sequential():
    """One stacked advance must be >= 3x faster than 16 sequential."""
    tiling = MulticoreFloorplan.tile(n_cores=N_CORES, coupling_scale=0.0)
    model = MulticoreThermalModel(tiling)
    powers = _power_schedule(model.shape)
    vectorized = _time_vectorized(powers)
    sequential = _time_sequential(powers)
    assert vectorized * SPEEDUP_FLOOR <= sequential, (
        f"stacked advance: {1e3 * vectorized:.1f} ms for "
        f"{STEPS} x {N_CORES}-core steps vs {1e3 * sequential:.1f} ms "
        f"sequential (speedup {sequential / vectorized:.2f}x "
        f"< {SPEEDUP_FLOOR:g}x)"
    )


def test_vectorized_matches_sequential_state():
    """The timed comparison is apples-to-apples: identical end state."""
    tiling = MulticoreFloorplan.tile(n_cores=N_CORES, coupling_scale=0.0)
    model = MulticoreThermalModel(tiling)
    powers = _power_schedule(model.shape)
    singles = [LumpedThermalModel(tiling.core) for _ in range(N_CORES)]
    for step in range(50):
        model.advance(powers[step], CYCLES)
        for core, single in enumerate(singles):
            single.advance(powers[step, core], CYCLES)
    expected = np.stack([single.temperatures for single in singles])
    assert np.array_equal(model.temperatures, expected)
