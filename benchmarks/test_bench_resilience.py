"""Overhead guard for the fault-tolerant sweep orchestrator.

The orchestrator adds per-spec bookkeeping (outcome records, deferred
in-spec-order telemetry folding, optional journal writes) on top of the
legacy executor.  On a healthy sweep -- no faults, no retries -- that
bookkeeping must stay in the noise: an orchestrated sweep may take at
most ``ORCHESTRATOR_CEILING`` (1.5x) the legacy executor's wall-clock on
the same matrix, serial and pooled alike.  The generous ceiling absorbs
scheduler jitter on small CI machines; the recorded target is ~1.05x.

Checkpointing is measured separately (journal lines are fsync'd, so it
is disk-bound by design) and recorded in the receipt without a floor.

Appends measurements to ``BENCH_sweep.json`` like the other benchmarks
(override with ``BENCH_SWEEP_OUT``):

    PYTHONPATH=src python -m pytest benchmarks/test_bench_resilience.py -q
"""

from __future__ import annotations

import time

from benchmarks._receipt import update_receipt as _update_receipt
from repro.sim.parallel import SweepOptions, matrix_specs, run_outcomes, run_specs

#: Maximum orchestrated / legacy wall-clock ratio on a fault-free sweep.
ORCHESTRATOR_CEILING = 1.5
#: Aspirational ratio (recorded in the receipt, not asserted).
ORCHESTRATOR_TARGET = 1.05

BENCHMARKS = ("gcc", "gzip")
POLICIES = ("none", "pid")
INSTRUCTIONS = 400_000
REPEATS = 3


def _specs():
    return matrix_specs(BENCHMARKS, POLICIES, instructions=INSTRUCTIONS)


def _best_of(callable_, repeats=REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_orchestrator_overhead_is_bounded():
    """Fault-free orchestrated sweep <= 1.5x the legacy executor."""
    specs = _specs()
    legacy = _best_of(lambda: run_specs(specs, jobs=1))
    orchestrated = _best_of(
        lambda: run_outcomes(specs, jobs=1, options=SweepOptions())
    )
    ratio = orchestrated / legacy
    _update_receipt(
        "resilience_overhead",
        {
            "matrix": f"{len(BENCHMARKS)}x{len(POLICIES)}",
            "instructions": INSTRUCTIONS,
            "legacy_seconds": round(legacy, 4),
            "orchestrated_seconds": round(orchestrated, 4),
            "ratio": round(ratio, 4),
            "ceiling": ORCHESTRATOR_CEILING,
            "target": ORCHESTRATOR_TARGET,
        },
    )
    assert ratio <= ORCHESTRATOR_CEILING, (
        f"orchestrated sweep is {ratio:.2f}x the legacy executor "
        f"(ceiling {ORCHESTRATOR_CEILING}x)"
    )


def test_checkpoint_write_cost_recorded(tmp_path):
    """Record (not assert) the fsync'd journal's cost per spec."""
    specs = _specs()
    plain = _best_of(
        lambda: run_outcomes(specs, jobs=1, options=SweepOptions()),
        repeats=2,
    )

    def checkpointed():
        run_outcomes(
            specs,
            jobs=1,
            options=SweepOptions(
                checkpoint_path=tmp_path / "bench.ckpt.jsonl"
            ),
        )

    journaled = _best_of(checkpointed, repeats=2)
    _update_receipt(
        "resilience_checkpoint",
        {
            "specs": len(specs),
            "plain_seconds": round(plain, 4),
            "journaled_seconds": round(journaled, 4),
            "seconds_per_spec": round(
                max(0.0, journaled - plain) / len(specs), 5
            ),
        },
    )
