"""Performance guard for distributed sweep sharding (Level 4).

The guarded claim: sharding an 8-spec compare matrix over **two**
worker processes (each a real ``python -m repro work`` subprocess
talking to a real TCP coordinator) must beat the same sweep served to
**one** worker by at least ``DISTRIBUTED_FLOOR`` (1.5x) wall clock.
The coordinator is in-process; the workers are genuine subprocesses,
so the measurement includes every distribution overhead the production
path pays: spec encoding, socket round trips, journal-free settlement,
and per-spec telemetry payloads.

Skipped on machines with fewer than 4 cores (two workers cannot beat
one without cores to spread over); the CI sweep-performance runner
provides them.  The measurement lands in the ``distributed`` section
of ``BENCH_sweep.json`` via :mod:`benchmarks._receipt`.

Needs no pytest plugins:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_distributed.py -q
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import pytest

from benchmarks._receipt import update_receipt
from repro.sim.distributed import ClusterConfig, ShardCoordinator
from repro.sim.parallel import matrix_specs

#: Required two-worker wall-clock multiple over one worker.
DISTRIBUTED_FLOOR = 1.5
#: Aspirational target (recorded in the receipt, not asserted).
DISTRIBUTED_TARGET = 1.8

#: The sharded matrix: 4 benchmarks x 2 policies = 8 specs.
BENCHMARKS = ("gcc", "gzip", "art", "mesa")
POLICIES = ("none", "pid")

#: Per-run budget: long enough that worker startup and the TCP
#: protocol overhead amortize into the compute.
INSTRUCTIONS = 1_500_000


def _specs():
    return matrix_specs(BENCHMARKS, POLICIES, instructions=INSTRUCTIONS)


def _spawn_worker(port: int) -> subprocess.Popen:
    environment = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    environment["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, environment.get("PYTHONPATH")) if p
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "work",
            "--connect", f"127.0.0.1:{port}",
            "--token", "bench",
            "--once", "--idle-timeout", "120",
        ],
        env=environment,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _time_sharded_sweep(workers: int) -> float:
    coordinator = ShardCoordinator(
        _specs(),
        ClusterConfig(
            host="127.0.0.1",
            port=0,
            token="bench",
            lease_seconds=60.0,
            heartbeat_seconds=2.0,
            poll_seconds=0.02,
        ),
    )
    coordinator.start()
    start = time.perf_counter()
    processes = [_spawn_worker(coordinator.port) for _ in range(workers)]
    try:
        outcomes = coordinator.wait()
    finally:
        for process in processes:
            process.wait(timeout=120)
    assert all(o.error is None for o in outcomes)
    return time.perf_counter() - start


def test_two_workers_beat_one_worker():
    """2-worker sharded sweep >= 1.5x the 1-worker sharded sweep."""
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"distributed speedup needs >= 4 cores (have {cores})")
    single_seconds = _time_sharded_sweep(1)
    double_seconds = _time_sharded_sweep(2)
    speedup = single_seconds / double_seconds
    update_receipt(
        "distributed",
        {
            "matrix": (
                f"{len(BENCHMARKS)} benchmarks x {len(POLICIES)} policies"
            ),
            "instructions_per_run": INSTRUCTIONS,
            "one_worker_seconds": round(single_seconds, 3),
            "two_worker_seconds": round(double_seconds, 3),
            "speedup": round(speedup, 3),
            "floor": DISTRIBUTED_FLOOR,
            "target": DISTRIBUTED_TARGET,
        },
    )
    assert speedup >= DISTRIBUTED_FLOOR, (
        f"two workers only {speedup:.2f}x one worker "
        f"({single_seconds:.2f}s -> {double_seconds:.2f}s); "
        f"floor is {DISTRIBUTED_FLOOR}x"
    )
