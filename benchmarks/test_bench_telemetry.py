"""Telemetry overhead guard: disabled instrumentation must be free.

The observability layer's contract is that the default (disabled)
configuration costs the fast engine less than 2% (docs/observability.md).
The disabled path adds only a handful of hoisted boolean tests per
sample, so the guard measures both sides of that ratio directly:

* the engine's real per-sample cost (wall time / samples, disabled);
* the cost of the per-sample disabled-path micro-ops (null-telemetry
  flag tests and ``is None`` profiler checks), measured in isolation.

The asserted bound -- instrumentation micro-ops < 2% of a sample -- is
intentionally generous: the measured ratio is typically well under
0.5%.  A second test asserts the stronger functional property that a
telemetry-enabled run is *bit-identical* to a disabled one, so
enabling observability can never change science outputs.

This module needs no pytest plugins (plain ``perf_counter`` timing),
so CI can run it with only numpy + pytest installed:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_telemetry.py -q
"""

import time

from repro.sim.fast import FastEngine
from repro.sim.sweep import run_one
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.workloads.profiles import get_profile

#: Instruction budget for engine timing (hundreds of samples, < 1 s).
INSTRUCTIONS = 500_000

#: Overhead budget for disabled telemetry, as a fraction of a sample.
OVERHEAD_BUDGET = 0.02


def _run_engine(repeats: int = 3) -> tuple[float, int]:
    """Best-of-N seconds-per-sample for a disabled-telemetry run."""
    best = float("inf")
    samples = 0
    for _ in range(repeats):
        engine = FastEngine(get_profile("gcc"), seed=0)
        start = time.perf_counter()
        engine.run(instructions=INSTRUCTIONS)
        elapsed = time.perf_counter() - start
        samples = engine.manager.samples
        best = min(best, elapsed / samples)
    return best, samples


def _disabled_micro_ops(iterations: int) -> float:
    """Seconds per iteration of the disabled path's per-sample checks.

    Mirrors exactly what the instrumented call sites add when telemetry
    is off: two hoisted-flag tests in the engine loop, one
    ``telemetry.enabled`` attribute test in the DTM manager, and two
    ``is None`` profiler checks in the thermal model.
    """
    telemetry = NULL_TELEMETRY
    recording = telemetry.enabled
    time_samples = False
    profiler = None
    sink = 0
    start = time.perf_counter()
    for _ in range(iterations):
        if time_samples:  # engine: latency clock gate
            sink += 1
        if telemetry.enabled:  # manager: record_control gate
            sink += 1
        if profiler is not None:  # thermal: advance() span gate
            sink += 1
        if profiler is not None:  # thermal: step_cycle() span gate
            sink += 1
        if recording:  # engine: record_sample gate
            sink += 1
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / iterations


def test_disabled_overhead_under_two_percent():
    """Per-sample cost of disabled instrumentation < 2% of a sample."""
    per_sample, samples = _run_engine()
    assert samples > 100
    micro = min(_disabled_micro_ops(200_000) for _ in range(3))
    ratio = micro / per_sample
    assert ratio < OVERHEAD_BUDGET, (
        f"disabled telemetry micro-ops cost {1e9 * micro:.1f} ns/sample "
        f"against a {1e6 * per_sample:.2f} us engine sample "
        f"({100 * ratio:.3f}% > {100 * OVERHEAD_BUDGET:g}%)"
    )


def test_disabled_run_bit_identical_to_enabled():
    """Enabling telemetry never perturbs simulation results."""
    disabled = run_one("gcc", "pid", instructions=INSTRUCTIONS)
    enabled = run_one(
        "gcc", "pid", instructions=INSTRUCTIONS, telemetry=Telemetry()
    )
    assert enabled.cycles == disabled.cycles
    assert enabled.instructions == disabled.instructions
    assert enabled.ipc == disabled.ipc
    assert enabled.max_temperature == disabled.max_temperature
    assert enabled.emergency_fraction == disabled.emergency_fraction
    assert enabled.energy_joules == disabled.energy_joules


def test_enabled_overhead_is_bounded():
    """Full telemetry (trace + metrics + spans) stays within ~25x.

    Not a contract like the disabled bound -- just a tripwire against
    accidentally quadratic record assembly.  The bound is deliberately
    loose (typical measured factor is ~1.3x) because CI machines are
    noisy and span timing amplifies scheduler jitter.
    """
    per_sample_disabled, _ = _run_engine()
    best = float("inf")
    for _ in range(3):
        engine = FastEngine(
            get_profile("gcc"), seed=0, telemetry=Telemetry()
        )
        start = time.perf_counter()
        engine.run(instructions=INSTRUCTIONS)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / engine.manager.samples)
    assert best < 25 * per_sample_disabled, (
        f"enabled telemetry: {1e6 * best:.2f} us/sample vs "
        f"{1e6 * per_sample_disabled:.2f} us/sample disabled"
    )
