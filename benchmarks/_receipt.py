"""Shared, crash-safe writer for the ``BENCH_sweep.json`` receipt.

Every benchmark module appends its measurements to one JSON receipt so
CI can upload a single perf-trajectory artifact.  Before this module
each bench file carried its own read-modify-write copy, which had two
failure modes:

* a crash (or ``kill -9``) between ``open(..., "w")`` truncating the
  file and ``json.dump`` finishing left a torn, unparseable receipt;
* two bench processes sharing one receipt path could interleave their
  read-modify-write cycles and silently drop each other's sections.

:func:`update_receipt` fixes both: the merged document is written to a
sibling tempfile and atomically renamed over the target with
:func:`os.replace` (readers always see a complete JSON document), and
an ``fcntl`` advisory lock around the read-merge-replace cycle
serialises concurrent writers.  Unknown keys already present in the
receipt are preserved -- the merge only touches ``generated`` and the
section being reported.

Each section carries its own ``_meta`` stamp (measurement time, the
machine's ``cpu_count``, the git revision at measurement time): the
receipt accumulates sections across separate CI jobs and machines, so
a single top-level stamp silently misattributed every earlier
section's provenance to whichever bench ran last.
"""

from __future__ import annotations

import functools
import json
import os
import subprocess
import tempfile
from datetime import datetime, timezone

try:  # pragma: no cover - always present on the POSIX CI runners
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback: best effort
    fcntl = None


def receipt_path() -> str:
    """The receipt location (``BENCH_SWEEP_OUT`` overrides the default)."""
    return os.environ.get("BENCH_SWEEP_OUT", "BENCH_sweep.json")


@functools.lru_cache(maxsize=1)
def _git_revision() -> str | None:
    """The repository HEAD at measurement time (``None`` outside git).

    Memoized: every section a bench process reports shares one
    ``git rev-parse`` call, and the revision cannot change mid-process.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = proc.stdout.strip()
    return revision if proc.returncode == 0 and revision else None


def _load(path: str) -> dict:
    """Current receipt contents, or ``{}`` when absent or torn."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def update_receipt(section: str, payload: dict, path: str | None = None) -> None:
    """Atomically merge one benchmark's measurements into the receipt.

    Reads the existing document (tolerating a missing or torn file),
    replaces only ``data[section]`` plus the top-level ``generated``
    stamp, and publishes the merge with a tempfile + :func:`os.replace`
    so a reader never observes a partial write.  Keys written by other
    bench modules -- including ones this code has never heard of --
    survive the merge untouched.

    The reported section gains a ``_meta`` sub-dict recording *its own*
    measurement time, ``cpu_count``, and git revision; earlier
    sections' ``_meta`` stamps are untouched, so a receipt merged
    across CI jobs attributes every number to the machine and revision
    that actually produced it.  The legacy top-level ``cpu_count``
    stamp (which could only describe the last writer) is dropped.
    """
    path = receipt_path() if path is None else path
    directory = os.path.dirname(os.path.abspath(path))
    lock_path = path + ".lock"
    lock = open(lock_path, "a+", encoding="utf-8")
    try:
        if fcntl is not None:
            fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
        data = _load(path)
        data.pop("cpu_count", None)
        data["generated"] = datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
        data[section] = dict(payload)
        data[section]["_meta"] = {
            "measured": data["generated"],
            "cpu_count": os.cpu_count(),
            "git_revision": _git_revision(),
        }
        fd, temp_path = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(data, handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
    finally:
        lock.close()
