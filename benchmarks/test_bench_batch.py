"""Performance guard for the lane-batched kernel, with a JSON receipt.

The guarded claim (ISSUE acceptance criterion; see
docs/performance.md): a :class:`repro.sim.batch.BatchEngine` advancing
B = 8 lanes through one structure-of-arrays kernel must sustain at
least ``BATCH_FLOOR`` (2.0x) the aggregate samples/sec of running the
same 8 engines sequentially.  Both sides run in this process on one
core -- the speedup is pure vectorization (one stacked thermal
advance, one broadcast threshold scan, one duty/power broadcast per
sampling interval instead of 8 scalar passes), so the guard is safe on
single-CPU runners.

The measurement appends a ``batch`` section to ``BENCH_sweep.json``
(override with ``BENCH_SWEEP_OUT``), extending the same receipt the
kernel/executor guards write, so CI uploads one perf-trajectory
artifact covering all three performance levels.  Timing is
best-of-repeats ``perf_counter``; engines are rebuilt per repeat so no
thermal state leaks between timings.

Needs no pytest plugins:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_batch.py -q
"""

from __future__ import annotations

import time

from benchmarks._receipt import update_receipt as _update_receipt
from repro.sim.batch import BatchEngine
from repro.sim.sweep import build_engine

#: Required aggregate samples/sec multiple over sequential lanes.
BATCH_FLOOR = 2.0
#: Aspirational target (recorded in the receipt, not asserted).
BATCH_TARGET = 3.0

#: Lane count (the ISSUE's acceptance point).
LANES = 8

#: Instruction budget per lane: long enough to amortize lane setup.
INSTRUCTIONS = 1_000_000

REPEATS = 3


def _build_lanes():
    """Eight compatible lanes: distinct seeds, one benchmark/policy."""
    return [
        build_engine("gcc", "pid", seed=seed) for seed in range(LANES)
    ]


def _time_sequential() -> tuple[float, int]:
    """Best-of-repeats wall clock for 8 serial runs + total samples."""
    best = float("inf")
    samples = 0
    for _ in range(REPEATS):
        engines = _build_lanes()
        start = time.perf_counter()
        results = [
            engine.run(instructions=INSTRUCTIONS) for engine in engines
        ]
        best = min(best, time.perf_counter() - start)
        samples = sum(
            result.cycles // engine.dtm_config.sampling_interval
            for engine, result in zip(engines, results)
        )
    return best, samples


def _time_batched() -> tuple[float, int]:
    """Best-of-repeats wall clock for one 8-lane batched run."""
    best = float("inf")
    samples = 0
    for _ in range(REPEATS):
        engines = _build_lanes()
        batch = BatchEngine(engines)
        start = time.perf_counter()
        results = batch.run(instructions=INSTRUCTIONS)
        best = min(best, time.perf_counter() - start)
        samples = sum(
            result.cycles // engine.dtm_config.sampling_interval
            for engine, result in zip(engines, results)
        )
    return best, samples


def test_batch_kernel_beats_sequential_lanes():
    """B=8 batched kernel >= 2x aggregate throughput of 8 serial runs."""
    sequential_seconds, sequential_samples = _time_sequential()
    batched_seconds, batched_samples = _time_batched()
    assert batched_samples == sequential_samples  # bit-identity sanity
    sequential_rate = sequential_samples / sequential_seconds
    batched_rate = batched_samples / batched_seconds
    speedup = batched_rate / sequential_rate
    _update_receipt(
        "batch",
        {
            "lanes": LANES,
            "instructions_per_lane": INSTRUCTIONS,
            "samples": batched_samples,
            "sequential_samples_per_sec": round(sequential_rate, 1),
            "batched_samples_per_sec": round(batched_rate, 1),
            "speedup": round(speedup, 3),
            "floor": BATCH_FLOOR,
            "target": BATCH_TARGET,
        },
    )
    assert speedup >= BATCH_FLOOR, (
        f"batched kernel only {speedup:.2f}x sequential at B={LANES} "
        f"({batched_rate:,.0f} vs {sequential_rate:,.0f} samples/s); "
        f"floor is {BATCH_FLOOR}x"
    )
