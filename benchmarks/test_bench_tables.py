"""One benchmark per paper table: the regeneration harness.

``pytest benchmarks/ --benchmark-only`` reruns every table of the
paper's evaluation (at quick budgets) and times the regeneration.  Each
bench also asserts the table's key qualitative property so a regression
in the *result* fails the bench, not just the timing.
"""

from repro.experiments import (
    table1_duality,
    table2_config,
    table3_rc,
    table4_characterization,
    table5_categories,
    table6_structure_temps,
    table7_emergency_breakdown,
    table8_stress_breakdown,
    table9_proxy_structure,
    table10_proxy_chipwide,
    table11_dtm_performance,
    table12_setpoint_sweep,
)
from repro.experiments.common import characterize_suite


def _once(benchmark, fn, **kwargs):
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)


def test_bench_table1(benchmark):
    result = _once(benchmark, table1_duality.run)
    assert len(result.rows) == 5


def test_bench_table2(benchmark):
    result = _once(benchmark, table2_config.run)
    assert any("RUU" in str(row["value"]) for row in result.rows)


def test_bench_table3(benchmark):
    result = _once(benchmark, table3_rc.run)
    assert result.rows[-1]["structure"] == "chip"


def test_bench_table4(benchmark):
    characterize_suite.cache_clear()
    result = _once(benchmark, table4_characterization.run, quick=True)
    assert len(result.rows) == 18
    by_name = {row["benchmark"]: row for row in result.rows}
    # Extreme benchmarks show emergencies; low ones never stress.
    assert by_name["gcc"]["pct_above_emergency"] > 10.0
    assert by_name["gzip"]["pct_above_stress"] < 1.0


def test_bench_table5(benchmark):
    result = _once(benchmark, table5_categories.run, quick=True)
    by_name = {row["benchmark"]: row for row in result.rows}
    assert by_name["gcc"]["measured"] == "extreme"
    assert by_name["gzip"]["measured"] == "low"


def test_bench_table6(benchmark):
    result = _once(benchmark, table6_structure_temps.run, quick=True)
    by_name = {row["benchmark"]: row for row in result.rows}
    assert by_name["gcc"]["regfile"] > 102.0
    assert by_name["gzip"]["regfile"] < 101.0


def test_bench_table7(benchmark):
    result = _once(benchmark, table7_emergency_breakdown.run, quick=True)
    by_name = {row["benchmark"]: row for row in result.rows}
    assert by_name["gcc"]["regfile"] > by_name["gcc"]["dcache"]


def test_bench_table8(benchmark):
    result = _once(benchmark, table8_stress_breakdown.run, quick=True)
    by_name = {row["benchmark"]: row for row in result.rows}
    assert by_name["mesa"]["regfile"] > 50.0


def test_bench_table9(benchmark):
    result = _once(benchmark, table9_proxy_structure.run, quick=True)
    # The boxcar proxy must disagree with the RC model somewhere.
    total_disagreement = sum(
        row["missed_10k"] + row["false_10k"] for row in result.rows
    )
    assert total_disagreement > 0


def test_bench_table10(benchmark):
    result = _once(benchmark, table10_proxy_chipwide.run, quick=True)
    # The paper's finding: the chip-wide proxy misses localized
    # emergencies for some benchmarks.
    assert any(row["missed_of_em_10k"] > 10.0 for row in result.rows)


def test_bench_table11(benchmark):
    result = _once(
        benchmark,
        table11_dtm_performance.run,
        quick=True,
        benchmarks=("gcc", "mesa", "art", "gzip"),
    )
    reductions = result.extras["loss_reduction_vs_toggle1"]
    assert reductions["pid"] > 0.5  # paper: 65 % suite-wide
    mean_row = result.rows[-1]
    assert mean_row["em_pid"] == 0.0


def test_bench_table12(benchmark):
    result = _once(
        benchmark,
        table12_setpoint_sweep.run,
        quick=True,
        benchmarks=("gcc",),
        setpoints=(101.0, 101.8),
    )
    by_setpoint = {row["setpoint"]: row for row in result.rows}
    assert by_setpoint[101.8]["safe_pid"] == "yes"
    assert by_setpoint[101.8]["safe_toggle1"] == "NO"
