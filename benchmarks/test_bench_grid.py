"""Performance guard for the spectral grid solver, with a JSON receipt.

The guarded claims (ISSUE acceptance criteria):

* a 1-second **advance** on the 48x48 grid runs at least
  ``ADVANCE_FLOOR`` (20x) faster under the spectral solver than under
  the pinned explicit-Euler integrator (which must sub-step the whole
  second -- ~27k sub-steps at this mesh);
* **steady_state** runs at least ``STEADY_FLOOR`` (50x) faster at
  96x96, where the direct eigenspace divide's structural advantage
  over the settle iteration is unambiguous, and at least
  ``STEADY_GUARD`` (20x) at 48x48, where the fixed per-call costs
  (block gathers, python dispatch) eat a larger share of the ~50 us
  spectral solve.  Both ratios are recorded in the receipt.

The comparison is apples-to-apples on physics: the measured spectral
and Euler steady states are asserted within ``PARITY_TOLERANCE``
(0.05 degC) per-block before any timing number is reported, so the
speedup cannot come from solving a different problem.

The measurement appends a ``grid`` section to ``BENCH_sweep.json``
(override with ``BENCH_SWEEP_OUT``), extending the shared receipt the
other performance guards write.  Timing is best-of-repeats
``perf_counter``.

Needs no pytest plugins; CI runs it in the grid-parity job:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_grid.py -q
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._receipt import update_receipt as _update_receipt
from repro.thermal.floorplan import Floorplan
from repro.thermal.grid import GridThermalModel

#: Mesh for the advance guard (the V1 experiment's default).
ADVANCE_RESOLUTION = 48

#: Interval for the advance guard: the heatsink-drift cadence, the
#: regime the spectral solver was built for.
ADVANCE_SECONDS = 1.0

#: Required spectral-over-Euler multiple for the 1 s advance at 48x48.
ADVANCE_FLOOR = 20.0

#: Mesh where the steady-state floor is asserted hard: the settle
#: iteration's ~N^4 cost dwarfs the direct solve's fixed overheads.
STEADY_RESOLUTION = 96

#: Required spectral-over-Euler multiple for steady_state at 96x96.
STEADY_FLOOR = 50.0

#: Softer steady-state guard at the 48x48 default mesh (typical
#: measured ratio ~50x, but fixed per-call costs make it jittery).
STEADY_GUARD = 20.0

#: Per-block mean agreement required before timings are meaningful.
PARITY_TOLERANCE = 0.05

REPEATS = 5


def _peak_powers(floorplan: Floorplan) -> np.ndarray:
    return np.array([block.peak_power for block in floorplan.blocks])


def _pair(floorplan: Floorplan, resolution: int):
    return (
        GridThermalModel(floorplan, resolution=resolution, solver="spectral"),
        GridThermalModel(floorplan, resolution=resolution, solver="euler"),
    )


def _best_of(callable_, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_spectral_advance_and_steady_beat_euler():
    """The spectral solver clears the ISSUE's speedup floors."""
    floorplan = Floorplan.default()
    powers = _peak_powers(floorplan)

    # -- 1 s advance at 48x48 ------------------------------------------------
    spectral, euler = _pair(floorplan, ADVANCE_RESOLUTION)

    def advance_spectral():
        spectral.reset()
        spectral.advance(powers, ADVANCE_SECONDS)

    def advance_euler():
        euler.reset()
        euler.advance(powers, ADVANCE_SECONDS)

    spectral.advance(powers, ADVANCE_SECONDS)  # warm the decay cache
    spectral_advance = _best_of(advance_spectral)
    euler_advance = _best_of(advance_euler, repeats=2)  # ~0.6 s per pass
    advance_speedup = euler_advance / spectral_advance

    # Physics parity gate: per-block means after the timed interval.
    parity_advance = float(
        np.max(
            np.abs(spectral.block_temperatures() - euler.block_temperatures())
        )
    )
    assert parity_advance < PARITY_TOLERANCE, (
        f"1 s advance diverged between solvers: {parity_advance:.4f} degC"
    )

    # -- steady_state at 96x96 (hard floor) and 48x48 (guard) ----------------
    steady = {}
    for resolution, floor in (
        (STEADY_RESOLUTION, STEADY_FLOOR),
        (ADVANCE_RESOLUTION, STEADY_GUARD),
    ):
        spectral, euler = _pair(floorplan, resolution)
        spectral_steady = _best_of(lambda: spectral.steady_state(powers))
        euler_steady = _best_of(lambda: euler.steady_state(powers), repeats=2)
        parity = float(
            np.max(
                np.abs(spectral.steady_state(powers) - euler.steady_state(powers))
            )
        )
        assert parity < PARITY_TOLERANCE, (
            f"steady_state diverged at {resolution}x{resolution}: "
            f"{parity:.4f} degC"
        )
        steady[resolution] = {
            "spectral_seconds": spectral_steady,
            "euler_seconds": euler_steady,
            "speedup": euler_steady / spectral_steady,
            "floor": floor,
            "parity_degc": parity,
        }

    _update_receipt(
        "grid",
        {
            "advance": {
                "resolution": ADVANCE_RESOLUTION,
                "seconds_advanced": ADVANCE_SECONDS,
                "spectral_seconds": round(spectral_advance, 6),
                "euler_seconds": round(euler_advance, 3),
                "speedup": round(advance_speedup, 1),
                "floor": ADVANCE_FLOOR,
                "parity_degc": parity_advance,
            },
            "steady_state": {
                f"{resolution}x{resolution}": {
                    "spectral_seconds": round(row["spectral_seconds"], 6),
                    "euler_seconds": round(row["euler_seconds"], 4),
                    "speedup": round(row["speedup"], 1),
                    "floor": row["floor"],
                    "parity_degc": row["parity_degc"],
                }
                for resolution, row in steady.items()
            },
        },
    )

    assert advance_speedup >= ADVANCE_FLOOR, (
        f"spectral 1 s advance only {advance_speedup:.1f}x Euler "
        f"({spectral_advance * 1e6:.0f} us vs {euler_advance:.3f} s); "
        f"floor is {ADVANCE_FLOOR}x"
    )
    for resolution, row in steady.items():
        assert row["speedup"] >= row["floor"], (
            f"spectral steady_state at {resolution}x{resolution} only "
            f"{row['speedup']:.1f}x Euler "
            f"({row['spectral_seconds'] * 1e6:.0f} us vs "
            f"{row['euler_seconds'] * 1e3:.1f} ms); floor is "
            f"{row['floor']:g}x"
        )
