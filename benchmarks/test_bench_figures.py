"""One benchmark per paper figure and per ablation/calibration study."""

from repro.experiments import (
    ablation_interrupt,
    ablation_mechanisms,
    ablation_quantization,
    ablation_sampling,
    ablation_windup,
    calibration_fast_engine,
    figure1_control_loop,
    figure2_package,
    figure3_network_simplification,
    figure4_traces,
)


def _once(benchmark, fn, **kwargs):
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)


def test_bench_figure1(benchmark):
    result = _once(benchmark, figure1_control_loop.run, samples=600)
    assert not result.rows[0]["emergency"]


def test_bench_figure2(benchmark):
    result = _once(benchmark, figure2_package.run, duration_s=400.0)
    assert result.rows[0]["steady_die_c"] == 77.0


def test_bench_figure3(benchmark):
    result = _once(benchmark, figure3_network_simplification.run)
    assert result.extras["worst_deviation_k"] < 0.1


def test_bench_figure4(benchmark):
    # figure4's own parameter is also called "benchmark": pass it
    # positionally to avoid colliding with the fixture keyword.
    result = benchmark.pedantic(
        lambda: figure4_traces.run("gcc", instructions=1_500_000),
        rounds=1,
        iterations=1,
    )
    by_policy = {row["policy"]: row for row in result.rows}
    assert by_policy["pid"]["max_temp_c"] < 102.0
    assert by_policy["none"]["max_temp_c"] > 102.0


def test_bench_ablation_windup(benchmark):
    result = _once(benchmark, ablation_windup.run, policies=("pid",))
    by_mode = {row["anti_windup"]: row for row in result.rows}
    # The paper's Section 3.3 failure mode: no protection -> emergencies.
    assert by_mode["none"]["pct_emergency"] > 0.0
    assert by_mode["conditional"]["pct_emergency"] == 0.0


def test_bench_ablation_sampling(benchmark):
    result = _once(
        benchmark, ablation_sampling.run, quick=True,
        intervals=(1000, 8000, 32000),
    )
    # No emergencies at any interval well below the thermal constant.
    assert all(row["pct_emergency"] == 0.0 for row in result.rows)


def test_bench_ablation_interrupt(benchmark):
    result = _once(
        benchmark, ablation_interrupt.run, quick=True, benchmarks=("gcc",)
    )
    by_mode = {row["signaling"]: row for row in result.rows}
    assert by_mode["interrupt"]["stall_cycles"] > 0
    assert by_mode["direct"]["stall_cycles"] == 0


def test_bench_ablation_quantization(benchmark):
    result = _once(
        benchmark, ablation_quantization.run, quick=True, levels=(2, 8, 64)
    )
    assert all(row["pct_emergency"] == 0.0 for row in result.rows)


def test_bench_ablation_mechanisms(benchmark):
    result = _once(benchmark, ablation_mechanisms.run, quick=True)
    by_mechanism = {row["mechanism"]: row for row in result.rows}
    # Throttling leaves the bpred hot spot warmer than toggling does.
    assert (
        by_mechanism["throttling"]["max_temp_c"]
        > by_mechanism["toggling"]["max_temp_c"]
    )


def test_bench_calibration(benchmark):
    # Full budgets here: this bench is the calibration of record for
    # the fast engine's supply model (quick mode under-warms the core).
    result = _once(benchmark, calibration_fast_engine.run)
    assert result.extras["worst_error"] < 0.1
