"""Microbenchmarks of the library's hot primitives.

These measure the cost of the operations the simulators execute
millions of times: the per-cycle thermal update (paper Eq. 5), the
exact sampling-interval update, a controller step, a cache access, a
branch prediction, the toggling gate, one detailed-core cycle, and one
fast-engine sample.
"""

import itertools

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.control.pid import PIDController
from repro.dtm.mechanisms import FetchToggling
from repro.dtm.policies import make_policy
from repro.sim.fast import FastEngine
from repro.thermal.floorplan import Floorplan
from repro.thermal.lumped import LumpedThermalModel
from repro.uarch.branch.hybrid import HybridPredictor
from repro.uarch.caches import Cache
from repro.uarch.pipeline import OutOfOrderCore
from repro.workloads.generator import instruction_stream
from repro.workloads.profiles import get_profile


@pytest.fixture
def floorplan():
    return Floorplan.default()


def test_bench_thermal_step_cycle(benchmark, floorplan):
    """One forward-Euler cycle of the lumped model (Eq. 5)."""
    model = LumpedThermalModel(floorplan, 100.0)
    powers = np.array([b.peak_power for b in floorplan.blocks])
    benchmark(model.step_cycle, powers)


def test_bench_thermal_advance_sample(benchmark, floorplan):
    """One exact 1000-cycle exponential update."""
    model = LumpedThermalModel(floorplan, 100.0)
    powers = np.array([b.peak_power for b in floorplan.blocks])
    benchmark(model.advance, powers, 1000)


def test_bench_pid_update(benchmark):
    """One PID controller sample."""
    controller = PIDController(
        85.0, 4.9e5, 0.0, setpoint=101.8, sample_time=667e-9,
        output_limits=(0.0, 1.0),
    )
    measurements = itertools.cycle([101.7, 101.85, 101.9, 101.75])
    benchmark(lambda: controller.update(next(measurements)))


def test_bench_cache_access(benchmark, machine_config=None):
    """One L1 access over a mixed address stream."""
    from repro.config import CacheConfig

    cache = Cache(CacheConfig("dl1", 64 * 1024, 2, 32, 1))
    addresses = itertools.cycle(range(0, 256 * 1024, 40))
    benchmark(lambda: cache.access(next(addresses)))


def test_bench_branch_prediction(benchmark):
    """One hybrid predict + resolve."""
    predictor = HybridPredictor()
    pcs = itertools.cycle(range(0x400000, 0x400000 + 64 * 8, 8))

    def predict_resolve():
        pc = next(pcs)
        prediction = predictor.predict(pc)
        predictor.resolve(pc, prediction, True, pc + 64)

    benchmark(predict_resolve)


def test_bench_toggling_gate(benchmark):
    """One fetch-gate decision."""
    toggling = FetchToggling()
    toggling.set_output(3 / 7)
    cycles = itertools.count()
    benchmark(lambda: toggling.allows(next(cycles)))


def test_bench_detailed_core_cycle(benchmark):
    """One cycle of the out-of-order core on a gcc-like stream."""
    core = OutOfOrderCore(
        MachineConfig(), instruction_stream(get_profile("gcc"), seed=1)
    )
    core.run(max_cycles=5000)  # warm structures first
    benchmark(core.step)


def test_bench_fast_engine_per_million_instructions(benchmark):
    """A full fast-engine run (1 M instructions, PID-managed)."""

    def run():
        engine = FastEngine(get_profile("gcc"), policy=make_policy("pid"))
        return engine.run(instructions=1_000_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.emergency_fraction == 0.0
