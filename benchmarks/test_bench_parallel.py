"""Performance guards for the two-level perf layer, with a JSON receipt.

Two guarded claims (see docs/performance.md):

1. **Fused kernel**: the optimized :class:`repro.sim.fast.FastEngine`
   sample loop must sustain at least ``KERNEL_FLOOR`` (1.3x) the
   samples/sec of the pinned pre-fusion kernel
   (:class:`repro.sim.reference.ReferenceFastEngine`).  The baseline is
   frozen source, so the comparison cannot drift with unrelated
   commits.  Target (recorded, not asserted): >= 1.5x.
2. **Parallel executor**: fanning a 4-benchmark x 3-policy matrix over
   worker processes must beat the serial loop by at least
   ``EXECUTOR_FLOOR`` (2.0x).  Skipped on machines with fewer than 4
   cores (a process pool cannot beat serial without cores to run on);
   CI provides the multi-core runner.  Target (recorded): >= 3x on an
   8-way full-suite sweep.

Every test appends its measurements to ``BENCH_sweep.json`` (override
the path with the ``BENCH_SWEEP_OUT`` environment variable) via the
atomic merge-by-section writer in :mod:`benchmarks._receipt`, so CI can
upload the receipt as the perf-trajectory baseline artifact.  Timing is
best-of-repeats ``perf_counter``; engines are rebuilt per repeat so no
thermal state leaks between timings.

Needs no pytest plugins:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_parallel.py -q
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks._receipt import update_receipt as _update_receipt
from repro.dtm.policies import make_policy
from repro.sim.fast import FastEngine
from repro.sim.parallel import matrix_specs, run_specs
from repro.sim.reference import ReferenceFastEngine
from repro.thermal.floorplan import Floorplan
from repro.workloads.profiles import get_profile

#: Required fused-kernel samples/sec multiple over the pinned reference.
KERNEL_FLOOR = 1.3
#: Aspirational single-run throughput target (recorded in the receipt).
KERNEL_TARGET = 1.5

#: Required executor wall-clock multiple over the serial loop.
EXECUTOR_FLOOR = 2.0
#: Aspirational 8-way full-suite target (recorded in the receipt).
EXECUTOR_TARGET = 3.0

#: The executor benchmark matrix (12 runs, ISSUE-specified shape).
EXECUTOR_BENCHMARKS = ("gcc", "gzip", "art", "mesa")
EXECUTOR_POLICIES = ("toggle1", "pi", "pid")

#: Instruction budget per run: long enough that pool startup amortizes.
INSTRUCTIONS = 1_500_000

#: Kernel benchmark budget and repeats.
KERNEL_INSTRUCTIONS = 2_000_000
REPEATS = 3


def _time_kernel(engine_cls) -> tuple[float, int]:
    """Best-of-repeats wall-clock and the (identical) sample count."""
    floorplan = Floorplan.default()
    best = float("inf")
    samples = 0
    for _ in range(REPEATS):
        engine = engine_cls(
            get_profile("gcc"),
            policy=make_policy("pid", floorplan),
            floorplan=floorplan,
            seed=1,
        )
        start = time.perf_counter()
        result = engine.run(KERNEL_INSTRUCTIONS)
        best = min(best, time.perf_counter() - start)
        samples = result.cycles // engine.dtm_config.sampling_interval
    return best, samples


def test_fused_kernel_beats_pinned_reference():
    """Fused sample loop >= 1.3x the frozen pre-fusion kernel."""
    fused_seconds, fused_samples = _time_kernel(FastEngine)
    reference_seconds, reference_samples = _time_kernel(ReferenceFastEngine)
    assert fused_samples == reference_samples  # bit-identity sanity
    fused_rate = fused_samples / fused_seconds
    reference_rate = reference_samples / reference_seconds
    speedup = fused_rate / reference_rate
    _update_receipt(
        "kernel",
        {
            "instructions": KERNEL_INSTRUCTIONS,
            "samples": fused_samples,
            "fused_samples_per_sec": round(fused_rate, 1),
            "reference_samples_per_sec": round(reference_rate, 1),
            "speedup": round(speedup, 3),
            "floor": KERNEL_FLOOR,
            "target": KERNEL_TARGET,
        },
    )
    assert speedup >= KERNEL_FLOOR, (
        f"fused kernel only {speedup:.2f}x the pinned reference "
        f"({fused_rate:,.0f} vs {reference_rate:,.0f} samples/s); "
        f"floor is {KERNEL_FLOOR}x"
    )


def _time_matrix(jobs: int, specs) -> float:
    best = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        run_specs(specs, jobs=jobs)
        best = min(best, time.perf_counter() - start)
    return best


def test_executor_beats_serial_sweep():
    """Process-pool matrix >= 2x serial (needs >= 4 cores; CI enforces)."""
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"executor speedup needs >= 4 cores (have {cores})")
    jobs = min(8, cores)
    specs = matrix_specs(
        EXECUTOR_BENCHMARKS,
        EXECUTOR_POLICIES,
        instructions=INSTRUCTIONS,
    )
    serial_seconds = _time_matrix(1, specs)
    parallel_seconds = _time_matrix(jobs, specs)
    speedup = serial_seconds / parallel_seconds
    _update_receipt(
        "executor",
        {
            "matrix": (
                f"{len(EXECUTOR_BENCHMARKS)} benchmarks x "
                f"{len(EXECUTOR_POLICIES)} policies"
            ),
            "instructions_per_run": INSTRUCTIONS,
            "jobs": jobs,
            "serial_seconds": round(serial_seconds, 3),
            "parallel_seconds": round(parallel_seconds, 3),
            "speedup": round(speedup, 3),
            "floor": EXECUTOR_FLOOR,
            "target": EXECUTOR_TARGET,
        },
    )
    assert speedup >= EXECUTOR_FLOOR, (
        f"executor only {speedup:.2f}x serial with jobs={jobs} "
        f"({serial_seconds:.2f}s -> {parallel_seconds:.2f}s); "
        f"floor is {EXECUTOR_FLOOR}x"
    )


def test_full_suite_sweep_receipt():
    """8-way full-suite sweep measurement (opt-in: BENCH_FULL_SUITE=1).

    Records the headline number -- the whole benchmark suite under
    three policies plus baseline, serial vs 8 workers -- without
    gating local runs on an expensive sweep; the CI sweep-performance
    job enables it and uploads the receipt.
    """
    if os.environ.get("BENCH_FULL_SUITE") != "1":
        pytest.skip("set BENCH_FULL_SUITE=1 to run the full-suite sweep")
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"full-suite sweep needs >= 4 cores (have {cores})")
    from repro.workloads.profiles import BENCHMARKS

    jobs = min(8, cores)
    specs = matrix_specs(
        tuple(BENCHMARKS),
        ("toggle1", "pi", "pid"),
        include_baseline=True,
        instructions=INSTRUCTIONS,
    )
    serial_seconds = _time_matrix(1, specs)
    parallel_seconds = _time_matrix(jobs, specs)
    speedup = serial_seconds / parallel_seconds
    _update_receipt(
        "full_suite",
        {
            "runs": len(specs),
            "instructions_per_run": INSTRUCTIONS,
            "jobs": jobs,
            "serial_seconds": round(serial_seconds, 3),
            "parallel_seconds": round(parallel_seconds, 3),
            "speedup": round(speedup, 3),
            "floor": EXECUTOR_FLOOR,
            "target": EXECUTOR_TARGET,
        },
    )
    assert speedup >= EXECUTOR_FLOOR, (
        f"full-suite sweep only {speedup:.2f}x serial with jobs={jobs}; "
        f"floor is {EXECUTOR_FLOOR}x"
    )
