"""Performance guard for the result cache, with a JSON receipt.

The guarded claim (ISSUE acceptance criterion; see
docs/performance.md, "Level 5"): a *warm* sweep -- every spec
replayed from a freshly written :class:`repro.sim.cache.ResultCache`
-- must complete at least ``CACHE_FLOOR`` (5.0x) faster than the
*cold* sweep that populated the store, while producing exactly the
cold sweep's results.  Both sides run single-process in this process;
the speedup is skipped work, not parallelism, so the guard is safe on
single-CPU runners.

The measurement appends a ``cache`` section to ``BENCH_sweep.json``
(override with ``BENCH_SWEEP_OUT``), extending the shared receipt the
other performance levels write.  Timing is best-of-repeats
``perf_counter``; each cold repeat starts from an empty store
directory so no warm entry leaks into the cold number.

Needs no pytest plugins:

    PYTHONPATH=src python -m pytest benchmarks/test_bench_cache.py -q
"""

from __future__ import annotations

import time

from benchmarks._receipt import update_receipt as _update_receipt
from repro.sim.cache import ResultCache
from repro.sim.parallel import matrix_specs, run_specs

#: Required warm-over-cold wall-clock multiple.
CACHE_FLOOR = 5.0
#: Aspirational target (recorded in the receipt, not asserted).
CACHE_TARGET = 10.0

BENCHMARKS = ("gcc", "gzip", "art", "mesa")
POLICIES = ("none", "pid")

#: Instruction budget per spec: long enough that a replay's fixed
#: costs (key hashing, one log read) are negligible against execution.
INSTRUCTIONS = 1_000_000

REPEATS = 3


def _specs():
    return matrix_specs(BENCHMARKS, POLICIES, instructions=INSTRUCTIONS)


def test_warm_sweep_beats_cold_sweep(tmp_path):
    """A fully warm sweep replays >= 5x faster than the cold sweep."""
    specs = _specs()
    cold_seconds = float("inf")
    warm_seconds = float("inf")
    cold_results = warm_results = None
    for repeat in range(REPEATS):
        store = ResultCache(tmp_path / f"cache-{repeat}")
        start = time.perf_counter()
        cold_results = run_specs(specs, jobs=1, cache=store)
        cold_seconds = min(cold_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        warm_results = run_specs(specs, jobs=1, cache=store)
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
        assert store.stats()["hits"] >= len(specs)
    assert warm_results == cold_results  # bit-identity sanity
    speedup = cold_seconds / warm_seconds
    _update_receipt(
        "cache",
        {
            "specs": len(specs),
            "instructions_per_spec": INSTRUCTIONS,
            "cold_seconds": round(cold_seconds, 3),
            "warm_seconds": round(warm_seconds, 3),
            "speedup": round(speedup, 1),
            "floor": CACHE_FLOOR,
            "target": CACHE_TARGET,
        },
    )
    assert speedup >= CACHE_FLOOR, (
        f"warm sweep only {speedup:.2f}x cold "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s for "
        f"{len(specs)} specs); floor is {CACHE_FLOOR}x"
    )
