"""Benchmarks for the extension and sensitivity experiments."""

from repro.experiments import (
    ablation_placement,
    ablation_sensors,
    extension_full_suite,
    extension_hierarchical,
    extension_leakage,
    extension_multiprogram,
    sensitivity_floorplan,
    validation_grid,
)


def _once(benchmark, fn, **kwargs):
    return benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)


def test_bench_ablation_sensors(benchmark):
    result = _once(benchmark, ablation_sensors.run, quick=True)
    by_sensor = {row["sensor"]: row for row in result.rows}
    # Zero-mean noise stays safe; a low-reading sensor erodes safety.
    assert by_sensor["noise 0.05K"]["pct_emergency"] == 0.0
    assert by_sensor["offset -0.2K"]["max_temp_c"] > by_sensor["ideal"]["max_temp_c"]


def test_bench_extension_hierarchical(benchmark):
    result = _once(benchmark, extension_hierarchical.run, quick=True,
                   benchmarks=("gcc",))
    by_policy = {row["policy"]: row for row in result.rows}
    assert by_policy["pid@101.9"]["pct_emergency"] > 0.0
    assert by_policy["hier(pid@101.9)"]["pct_emergency"] == 0.0


def test_bench_sensitivity_floorplan(benchmark):
    result = _once(benchmark, sensitivity_floorplan.run, quick=True,
                   scales=((0.7, 1.0), (1.0, 1.0), (1.5, 1.0)))
    # The CT policy must stay safe and ahead on every floorplan.
    assert all(row["ct_wins"] == "yes" for row in result.rows)
    assert all(row["em_pid"] == 0.0 for row in result.rows)


def test_bench_validation_grid(benchmark):
    result = _once(benchmark, validation_grid.run, resolution=32)
    # The lumped model must track the continuum grid closely.
    assert result.extras["worst_steady_deviation_k"] < 0.3


def test_bench_extension_leakage(benchmark):
    result = _once(benchmark, extension_leakage.run, quick=True,
                   fractions=(0.0, 0.2, 0.5))
    by_fraction = {row["fraction"]: row for row in result.rows}
    # Moderate leakage stays controllable; heavy leakage breaks
    # fetch-side DTM authority (the analytic floor crosses 102 C).
    assert by_fraction[0.2]["pid_em"] == 0.0
    assert by_fraction[0.5]["dtm_has_authority"] == "NO"
    assert by_fraction[0.5]["pid_em"] > 0.0


def test_bench_ablation_placement(benchmark):
    result = _once(benchmark, ablation_placement.run, quick=True)
    by_coverage = {row["covers_hot_spot"]: row for row in result.rows}
    # Any coverage including the hot spot is safe; missing it is not.
    assert by_coverage["yes"]["pct_emergency"] == 0.0
    assert by_coverage["NO"]["pct_emergency"] > 1.0


def test_bench_extension_full_suite(benchmark):
    result = _once(benchmark, extension_full_suite.run, quick=True)
    assert len(result.rows) == 27  # 26 benchmarks + mean row
    assert result.extras["loss_reduction"] > 0.5
    # PID stays emergency-free on the extended benchmarks too.
    extended = [row for row in result.rows if row["suite"] == "extended"]
    assert all(row["em_pid"] == 0.0 for row in extended)


def test_bench_extension_multiprogram(benchmark):
    result = _once(benchmark, extension_multiprogram.run, quick=True,
                   quanta=(100_000, 2_000_000))
    by_quantum = {row["quantum"]: row for row in result.rows}
    # Fine interleaving time-averages the heat; coarse inherits it.
    assert by_quantum[100_000]["base_em"] < by_quantum[2_000_000]["base_em"]


def test_bench_extension_predictive(benchmark):
    from repro.experiments import extension_predictive

    result = _once(benchmark, extension_predictive.run, quick=True,
                   benchmarks=("gcc",), setpoints=(101.8,))
    row = result.rows[0]
    # Both controllers hold the setpoint without emergencies.
    assert row["em_pid"] == 0.0
    assert row["em_mpc"] == 0.0


def test_bench_power_breakdown(benchmark):
    from repro.experiments import power_breakdown as p1

    result = _once(benchmark, p1.run, quick=True)
    energy_rows = {row["policy"]: row for row in result.extras["energy_rows"]}
    # Throttling policies trade energy for temperature: EPI rises.
    assert energy_rows["toggle1"]["relative_epi"] > energy_rows["pid"]["relative_epi"] > 1.0


def test_bench_validation_grid_dtm(benchmark):
    from repro.experiments import validation_grid_dtm

    result = _once(benchmark, validation_grid_dtm.run,
                   instructions=600_000, resolution=20)
    # The lumped-tuned PID must hold the continuum plant's hottest
    # cell below the threshold while the unmanaged run exceeds it.
    assert result.extras["unmanaged_max_cell"] > 102.0
    assert result.extras["managed_max_cell"] < 102.0


def test_bench_proxy_driven_dtm(benchmark):
    from repro.experiments import proxy_driven_dtm

    # Full budget: the parser failure needs the steady-state regime.
    result = _once(benchmark, proxy_driven_dtm.run, benchmarks=("parser",))
    row = result.rows[0]
    # Temperature triggering prevents parser's emergencies; the
    # chip-power trigger is blind to its localized hot spot.
    assert row["em_temp"] == 0.0
    assert row["em_chip"] > 0.0
    assert row["em_struct"] == 0.0


def test_bench_extension_heatsink_drift(benchmark):
    from repro.experiments import extension_heatsink_drift

    # Full horizon: the duty shedding only begins once the drifting
    # heatsink pushes the hottest block to the setpoint (~18 s).
    result = _once(benchmark, extension_heatsink_drift.run)
    duty = result.extras["duty_trace"]
    sink = result.extras["sink_trace"]
    # The heatsink drifts upward and the PID eventually sheds duty to
    # hold the block setpoint; no epoch enters emergency.
    assert sink[-1] > sink[0]
    assert min(duty) < 1.0
    assert all(row["pct_emergency"] == 0.0 for row in result.rows)
