"""Legacy setup shim: environments without the ``wheel`` package cannot
build PEP 660 editable wheels, so ``pip install -e . --no-use-pep517``
falls back to this."""

from setuptools import setup

setup()
