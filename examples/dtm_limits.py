"""Where DTM breaks: sensors, leakage, and the case for a backup.

The paper's DTM never fails because its world is ideal: a sensor on
every block, dynamic-only power. This example walks the three ways the
real world erodes that guarantee — and what restores it:

1. **sensor placement** (the paper's own Section 4.2 caveat): a sensor
   set that misses the hot spot leaves the controller blind;
2. **temperature-dependent leakage**: past a leakage level, even
   duty-0 cannot keep the hottest block below the threshold —
   fetch-side DTM loses authority entirely;
3. **hierarchical backup** (the paper's Section 2.1 deployment
   sketch): an emergency full-stop below the threshold restores
   safety against sensor error.

Run:  python examples/dtm_limits.py
"""

from repro import FastEngine, get_profile, make_policy
from repro.dtm.policies import HierarchicalPolicy
from repro.power.leakage import LeakageModel
from repro.thermal.floorplan import Floorplan
from repro.thermal.sensors import NoisySensor

INSTRUCTIONS = 2_000_000


def sensor_placement() -> None:
    print("=== 1. sensor placement ===")
    for label, monitored in (
        ("sensor on every block", None),
        ("one sensor, on the regfile (the hot spot)", ("regfile",)),
        ("six sensors, none on the regfile",
         ("lsq", "window", "bpred", "dcache", "int_exec", "fp_exec")),
    ):
        result = FastEngine(
            get_profile("gcc"),
            policy=make_policy("pid"),
            monitored_blocks=monitored,
        ).run(instructions=INSTRUCTIONS)
        print(f"  {label}: {100 * result.emergency_fraction:5.1f}% emergency, "
              f"max {result.max_temperature:.2f} C")
    print("  -> placement, not sensor count, is what matters.\n")


def leakage_authority() -> None:
    print("=== 2. leakage and DTM authority ===")
    regfile = Floorplan.default().block("regfile")
    for fraction in (0.0, 0.2, 0.5):
        leakage = LeakageModel(fraction_of_peak=fraction) if fraction else None
        floor = (
            LeakageModel(fraction_of_peak=fraction).throttled_floor_temperature(
                regfile, 100.0
            )
            if fraction
            else 100.48
        )
        result = FastEngine(
            get_profile("gcc"), policy=make_policy("pid"), leakage=leakage
        ).run(instructions=INSTRUCTIONS)
        verdict = "in control" if result.emergency_fraction == 0 else "AUTHORITY LOST"
        print(
            f"  leak fraction {fraction:.1f}: throttled floor {floor:6.2f} C, "
            f"PID max {result.max_temperature:.2f} C -> {verdict}"
        )
    print("  -> once the fully-throttled floor crosses 102 C, no fetch-side")
    print("     policy can help; that is the handoff point to V/f scaling.\n")


def hierarchical_backup() -> None:
    print("=== 3. hierarchical backup vs sensor error ===")
    bad_sensor = NoisySensor(noise_sigma=0.03, offset=-0.1, seed=2)
    plain = FastEngine(
        get_profile("gcc"),
        policy=make_policy("pid", setpoint=101.9),
        sensor=bad_sensor,
    ).run(instructions=INSTRUCTIONS)
    guarded = FastEngine(
        get_profile("gcc"),
        policy=HierarchicalPolicy(
            make_policy("pid", setpoint=101.9), backup_trigger=101.85
        ),
        sensor=bad_sensor,
    ).run(instructions=INSTRUCTIONS)
    print(f"  aggressive PID alone:  {100 * plain.emergency_fraction:.2f}% "
          f"emergency (max {plain.max_temperature:.2f} C)")
    print(f"  + emergency backup:    {100 * guarded.emergency_fraction:.2f}% "
          f"emergency (max {guarded.max_temperature:.2f} C)")
    print("  -> the backup converts an unsafe aggressive configuration")
    print("     back to emergency-free.")


def main() -> None:
    sensor_placement()
    leakage_authority()
    hierarchical_backup()


if __name__ == "__main__":
    main()
