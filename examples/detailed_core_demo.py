"""Driving the cycle-level out-of-order core directly (the substrate).

Most studies use the calibrated fast engine, but the detailed core is a
full simulator in its own right: fetch with a hybrid branch predictor
and BTB, a 3-stage-extended rename pipeline, an 80-entry RUU, a 40-entry
LSQ, two cache levels, and a TLB (paper Table 2).  This example runs it
raw, prints pipeline statistics, then closes the loop with per-cycle
Wattch power and Eq.-5 thermal integration plus a PID DTM policy.

Run:  python examples/detailed_core_demo.py   (takes ~30 s: it is a
cycle-accurate simulator in pure Python)
"""

from repro import DetailedSimulator, MachineConfig, get_profile, make_policy
from repro.uarch.pipeline import OutOfOrderCore
from repro.workloads.generator import instruction_stream


def raw_core_demo() -> None:
    print("=== raw out-of-order core, gcc-like stream ===")
    profile = get_profile("gcc")
    core = OutOfOrderCore(MachineConfig(), instruction_stream(profile, seed=1))
    core.run(max_cycles=120_000)  # warm caches and predictor
    warm_cycles = core.stats.cycles
    warm_committed = core.stats.committed
    result = core.run(max_cycles=120_000)
    stats = core.stats
    ipc = (stats.committed - warm_committed) / (stats.cycles - warm_cycles)
    print(f"warm IPC: {ipc:.2f}")
    print(f"branch mispredict rate: {stats.mispredict_rate:.1%}")
    print(f"L1 D-cache miss rate: {core.memory.dl1.miss_rate:.1%}")
    print(f"L1 I-cache miss rate: {core.memory.il1.miss_rate:.2%}")
    print(f"TLB miss rate: {core.tlb.miss_rate:.2%}")
    print("mean structure utilization:")
    for name, value in result.mean_utilization.items():
        print(f"  {name:>9}: {value:.2f}")
    print()


def coupled_demo() -> None:
    print("=== coupled core + power + thermal + PID DTM ===")
    simulator = DetailedSimulator(
        get_profile("gcc"), policy=make_policy("pid"), seed=1
    )
    result = simulator.run(max_cycles=150_000)
    print(f"cycles: {result.cycles:,}  committed: {result.instructions:,.0f}")
    print(f"mean chip power: {result.mean_chip_power:.1f} W")
    print(f"hottest block: {max(result.max_block_temperature, key=result.max_block_temperature.get)}")
    print(f"max temperature: {result.max_temperature:.3f} C")
    print(f"emergency cycles: {100 * result.emergency_fraction:.3f}%")
    print(f"DTM engaged fraction: {100 * result.engaged_fraction:.1f}% of samples")


def main() -> None:
    raw_core_demo()
    coupled_demo()


if __name__ == "__main__":
    main()
