"""Quickstart: thermal management of one hot benchmark in ~30 lines.

Runs the gcc-like workload on the simulated Alpha-21264-class machine
three ways -- unmanaged, with the classic fixed toggle1 response, and
with the paper's PID controller -- and prints the two metrics the paper
uses: percent of cycles in thermal emergency and percent of the
unmanaged IPC retained.

Run:  python examples/quickstart.py
"""

from repro import FastEngine, get_profile, make_policy

INSTRUCTIONS = 2_000_000


def main() -> None:
    profile = get_profile("gcc")

    baseline = FastEngine(profile).run(instructions=INSTRUCTIONS)
    print(f"benchmark: {profile.name} ({profile.category.value} thermal demand)")
    print(
        f"unmanaged: IPC {baseline.ipc:.2f}, "
        f"max temp {baseline.max_temperature:.2f} C, "
        f"{100 * baseline.emergency_fraction:.1f}% of cycles in emergency"
    )

    for policy_name in ("toggle1", "pid"):
        policy = make_policy(policy_name)
        result = FastEngine(profile, policy=policy).run(instructions=INSTRUCTIONS)
        print(
            f"{policy_name:>9}: IPC {result.ipc:.2f} "
            f"({100 * result.relative_ipc(baseline):.1f}% of unmanaged), "
            f"max temp {result.max_temperature:.2f} C, "
            f"{100 * result.emergency_fraction:.2f}% emergency"
        )

    print()
    print("The PID controller rides just below the 102 C threshold and")
    print("keeps most of the performance; toggle1 must trigger a full")
    print("degree early and loses far more.")


if __name__ == "__main__":
    main()
