"""Bursty workloads and integral windup, end to end (Sections 3.3, 5.4).

The art-like profile alternates long cool phases with short scans hot
enough to cross the 102 C emergency threshold.  Two things make it the
hardest case for DTM:

* a boxcar power average barely notices the bursts (the Section 6
  argument for direct temperature modeling), and
* a PI/PID controller without anti-windup saturates its integral
  during the cool phases and reacts too late to the bursts -- exactly
  the failure the paper's conditional-integration fix removes.

Run:  python examples/bursty_workload_windup.py
"""

from repro.control.pid import AntiWindup
from repro.sim.sweep import run_one

INSTRUCTIONS = 14_000_000  # two full burst periods of the art profile


def main() -> None:
    baseline = run_one("art", "none", instructions=INSTRUCTIONS)
    print("art, unmanaged:")
    print(f"  time above the 101 C stress trigger: {100 * baseline.stress_fraction:.1f}%")
    print(f"  time in actual emergency (> 102 C):  {100 * baseline.emergency_fraction:.1f}%")
    print(f"  max temperature: {baseline.max_temperature:.2f} C")
    print("  -> little total stress, but a large share of it is real")
    print("     emergency: the bursty signature the paper describes.")
    print()

    print("PI controller, with and without the paper's anti-windup:")
    for mode in (AntiWindup.NONE, AntiWindup.CLAMP, AntiWindup.CONDITIONAL):
        result = run_one(
            "art", "pi", instructions=INSTRUCTIONS, anti_windup=mode
        )
        print(
            f"  {mode.value:12s}: %IPC={100 * result.relative_ipc(baseline):5.1f}  "
            f"emergency={100 * result.emergency_fraction:.2f}%  "
            f"max T={result.max_temperature:.2f} C"
        )
    print()
    print("Without protection the integral winds up over the cool phase")
    print("and the controller misses the burst entirely -- the chip enters")
    print("emergency.  Conditional integration reacts within one sample.")


if __name__ == "__main__":
    main()
