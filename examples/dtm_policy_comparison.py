"""DTM policy shoot-out across the thermal taxonomy (paper Section 7).

Runs one benchmark from each thermal category (extreme / high / medium /
low) under every policy and prints the paper's two metrics, showing
where each policy wins and loses:

* toggle1 is safe but punishes the near-threshold (mesa-class)
  programs that never actually reach emergency;
* M (the hand-built adaptive scheme) throttles too early because its
  response band starts at 100 C;
* the PI/PID controllers ride the setpoint 0.2 C under the limit and
  barely lose anything on programs that don't need management.

Run:  python examples/dtm_policy_comparison.py
"""

from repro.sim.sweep import run_one

BENCHMARKS = ("gcc", "art", "eon", "gzip")  # extreme, high, medium, low
POLICIES = ("toggle1", "toggle2", "m", "p", "pi", "pid")
INSTRUCTIONS = 2_000_000


def main() -> None:
    header = f"{'benchmark':>10} {'policy':>8} {'%IPC':>7} {'em%':>7} {'maxT':>8}"
    print(header)
    print("-" * len(header))
    for benchmark in BENCHMARKS:
        baseline = run_one(benchmark, "none", instructions=INSTRUCTIONS)
        print(
            f"{benchmark:>10} {'none':>8} {100.0:7.1f} "
            f"{100 * baseline.emergency_fraction:7.2f} "
            f"{baseline.max_temperature:8.2f}"
        )
        for policy in POLICIES:
            result = run_one(benchmark, policy, instructions=INSTRUCTIONS)
            print(
                f"{'':>10} {policy:>8} "
                f"{100 * result.relative_ipc(baseline):7.1f} "
                f"{100 * result.emergency_fraction:7.2f} "
                f"{result.max_temperature:8.2f}"
            )
        print()
    print("em% must be 0 for a successful DTM scheme; note toggle2 failing")
    print("on gcc, and the CT policies keeping ~100% IPC on eon and gzip.")


if __name__ == "__main__":
    main()
