"""Thermal-RC modeling walkthrough (paper Section 4).

Demonstrates the three layers of the thermal substrate:

1. the package model (Figure 2) and the paper's worked example -- a
   25 W die behind 2 K/W settles at 77 C with a ~2-minute transient;
2. the per-block lumped model (Figure 3C): localized heating is
   orders of magnitude faster than chip-wide heating, which is why
   hot spots demand per-structure DTM;
3. the detailed RC network (Figure 3B) with tangential resistances,
   showing why the paper may drop them.

Run:  python examples/thermal_rc_modeling.py
"""

import numpy as np

from repro import Floorplan, LumpedThermalModel, PackageModel
from repro.experiments.figure3_network_simplification import build_detailed_network
from repro.thermal.materials import tangential_to_normal_ratio


def package_demo() -> None:
    print("=== 1. Package model (Figure 2) ===")
    package = PackageModel()  # 1 K/W + 1 K/W, 60 J/K heatsink, 27 C ambient
    die, sink = package.steady_state(25.0)
    print(f"25 W steady state: die {die:.1f} C, heatsink {sink:.1f} C")
    print(f"dominant time constant: {package.dominant_time_constant:.0f} s")
    for seconds in (10, 60, 240, 600):
        package.reset()
        for _ in range(int(seconds / 0.5)):
            package.step(25.0, 0.5)
        print(f"  after {seconds:4d} s: die at {package.die_temperature:.1f} C")
    print()


def localized_demo() -> None:
    print("=== 2. Localized block heating (Figure 3C) ===")
    floorplan = Floorplan.default()
    model = LumpedThermalModel(floorplan, heatsink_temperature=100.0)
    powers = np.array([block.peak_power for block in floorplan.blocks])
    print("block time constants: ~175 us -- vs ~20 s for the chip.")
    print("heating from 100 C at peak power:")
    for microseconds in (50, 100, 200, 400, 800):
        model.reset()
        model.advance(powers, int(microseconds * 1500))  # 1.5 cycles/ns
        hottest = model.hottest_block
        print(
            f"  after {microseconds:4d} us: hottest block {hottest} at "
            f"{model.max_temperature:.2f} C"
        )
    model.reset()  # crossing time is measured from the 100 C start
    crossing = model.time_to_temperature("regfile", 8.0, 102.0)
    print(
        f"time for the regfile to cross the 102 C emergency threshold: "
        f"{crossing * 1e6:.0f} us ({crossing * 1.5e9:,.0f} cycles)"
    )
    print("-> a DTM policy re-checked every ~100 K cycles can be too late;")
    print("   a controller sampling every 1 K cycles is not.")
    print()


def network_demo() -> None:
    print("=== 3. Detailed vs simplified network (Figure 3B vs 3C) ===")
    floorplan = Floorplan.default()
    for block in floorplan.blocks[:3]:
        ratio = tangential_to_normal_ratio(block.area_m2, floorplan.die_area_m2)
        print(f"  {block.name}: R_tan / R_normal = {ratio:.0f}x")
    detailed = build_detailed_network(floorplan, heatsink_temperature=100.0)
    steady = detailed.steady_state(
        {block.name: block.peak_power for block in floorplan.blocks}
    )
    simplified = LumpedThermalModel(floorplan, 100.0).steady_state(
        np.array([block.peak_power for block in floorplan.blocks])
    )
    worst = max(
        abs(steady[block.name] - float(simplified[i]))
        for i, block in enumerate(floorplan.blocks)
    )
    print(f"worst steady-state deviation from dropping R_tan: {worst:.3f} K")
    print("-> the simplification is essentially free, as the paper argues.")


def main() -> None:
    package_demo()
    localized_demo()
    network_demo()


if __name__ == "__main__":
    main()
