"""Controller design walkthrough (paper Section 3).

Shows the full control-theoretic methodology on the DTM plant:

1. build the FOPDT plant model of the thermal process (gain = thermal
   R times actuator power gain; time constant = the longest block RC;
   dead time = half the sampling period);
2. tune P / PI / PD / PID gains in the Laplace domain with phase-margin
   constraints;
3. verify each closed loop with a step-response simulation (stability,
   overshoot, settling time, steady-state error);
4. demonstrate the integral-windup failure mode and the paper's fix.

Run:  python examples/controller_design.py
"""

from repro import Floorplan, PIDController, dtm_plant, simulate_step_response, tune
from repro.control.frequency import measure_margins
from repro.control.pid import AntiWindup


def design_and_verify() -> None:
    floorplan = Floorplan.default()
    plant = dtm_plant(floorplan)
    print("DTM plant (worst case over monitored blocks):")
    print(f"  gain K = {plant.gain:.2f} K per unit duty")
    print(f"  time constant tau = {plant.time_constant * 1e6:.0f} us")
    print(f"  dead time D = {plant.dead_time * 1e9:.0f} ns (half a sample)")
    print()

    print("tuned controllers and closed-loop step responses (step to 1.8 K):")
    for family in ("P", "PI", "PD", "PID"):
        gains = tune(plant, family)
        controller = PIDController(
            gains.kp,
            gains.ki,
            gains.kd,
            sample_time=667e-9,
            output_limits=(0.0, 1.0),
            bias=0.5 if family in ("P", "PD") else 0.0,
        )
        response = simulate_step_response(
            controller, plant, setpoint=1.8, duration=0.005
        )
        margins = measure_margins(gains, plant)
        gain_margin = (
            f"{margins.gain_margin_db:.1f} dB"
            if margins.gain_margin_db is not None
            else "inf"
        )
        print(f"  {gains.describe()}")
        print(
            f"    stable={response.stable}  overshoot={response.overshoot * 1000:.1f} mK  "
            f"settling={response.settling_time * 1e6:.0f} us  "
            f"ss-error={response.steady_state_error * 1000:.1f} mK"
        )
        print(
            f"    measured margins: PM={margins.phase_margin_deg:.1f} deg, "
            f"GM={gain_margin}"
        )
    print()


def windup_demo() -> None:
    print("integral windup (Section 3.3):")
    plant = dtm_plant(Floorplan.default())
    gains = tune(plant, "PI")
    for mode in (AntiWindup.NONE, AntiWindup.CONDITIONAL):
        controller = PIDController(
            gains.kp,
            gains.ki,
            0.0,
            setpoint=0.5,  # unreachable: the workload is too cool
            sample_time=667e-9,
            output_limits=(0.0, 1.0),
            anti_windup=mode,
            integral_non_negative=True,
        )
        # Long cool stretch: error stays positive, actuator saturated.
        for _ in range(5000):
            controller.update(0.0)
        wound_up = controller.integral
        # Sudden hot burst: how many samples until the output unpins?
        samples_to_react = 0
        while controller.update(2.0) >= 1.0 and samples_to_react < 100_000:
            samples_to_react += 1
        print(
            f"  {mode.value:12s}: integral after cool stretch = {wound_up:10.2f}, "
            f"samples to react to a burst = {samples_to_react}"
        )
    print("-> freezing the integrator at saturation (the paper's fix)")
    print("   makes the controller respond immediately.")


def main() -> None:
    design_and_verify()
    windup_demo()


if __name__ == "__main__":
    main()
